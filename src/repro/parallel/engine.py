"""The parallel CAD execution engine.

:class:`ParallelCadDetector` is a drop-in stand-in for
:class:`~repro.core.cad.CadDetector` that scores a sequence with a
process pool instead of a loop:

1. the parent publishes every snapshot to shared memory once
   (:mod:`repro.parallel.shm`);
2. work is decomposed along the transition or component axis
   (:mod:`repro.parallel.sharding`);
3. pool workers score their shards with worker-local calculators under
   content-keyed randomness (:mod:`repro.parallel.worker`);
4. the parent merges payloads back in transition order
   (:mod:`repro.parallel.merge`), selects δ, and builds the report
   with the exact serial code path.

Determinism contract (tested in ``tests/test_parallel_determinism.py``):
transition sharding reproduces a serial run *bit for bit* for any
worker count; component sharding is deterministic and numerically
equivalent (per-component pseudoinverses round differently from one
full factorisation) and is therefore only chosen by ``"auto"`` when it
provably saves cubic work.

Execution is *self-healing*: tasks run on a
:class:`~repro.parallel.supervisor.SupervisedPool` that detects worker
death and hangs (heartbeats + per-shard deadlines), requeues lost
shards onto surviving workers, and respawns workers with capped
exponential backoff. Only exhausted retry/restart budgets escalate to
:class:`~repro.exceptions.ParallelExecutionError`; pass
``checkpoint_path`` to make even that resumable.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..core.cad import build_report
from ..core.commute import DEFAULT_EXACT_LIMIT, CommuteTimeCalculator
from ..core.detector import Detector
from ..core.results import DetectionReport, TransitionScores
from ..core.scores import cad_edge_scores
from ..core.thresholds import select_global_threshold
from ..exceptions import DetectionError, ParallelExecutionError
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot
from ..observability import current_registry, enabled, set_gauge, trace
from ..resilience.chaos import ChaosSpec
from ..resilience.health import HealthReport
from .checkpoint import (
    read_parallel_checkpoint,
    sequence_fingerprint,
    write_parallel_checkpoint,
)
from .merge import (
    ComponentAccumulator,
    assemble_transition_scores,
    empty_transition_payload,
    merge_worker_health,
)
from .sharding import (
    plan_component_shards,
    plan_transition_chunks,
    resolve_shard_mode,
    validate_shard_mode,
)
from .shm import SharedGraphSequence
from .supervisor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_SHARD_RETRIES,
    DEFAULT_MAX_WORKER_RESTARTS,
    SupervisedPool,
)
from .worker import (
    WorkerConfig,
    score_component_shard,
    score_transition_chunk,
)


def default_worker_count() -> int:
    """CPU count of the machine (at least 1)."""
    return max(os.cpu_count() or 1, 1)


class ParallelCadDetector(Detector):
    """CAD over a process pool, reproducing serial results.

    Args:
        workers: pool size; defaults to the machine's CPU count. The
            pool never exceeds the task count.
        shard_by: work decomposition — ``"transition"`` (bit-for-bit
            serial parity), ``"component"`` (union-component tasks,
            exact backend only), or ``"auto"`` (component only when it
            provably helps, transition otherwise).
        chunk_size: transitions per task on the transition axis;
            defaults to ``ceil(T / workers)`` (one contiguous run per
            worker, maximising backend-cache reuse).
        checkpoint_path: when set, completed transitions are written
            here periodically and a rerun over the same input resumes
            from them.
        checkpoint_every: write the checkpoint after this many newly
            completed transitions (default 1: after every one).
        skip_unscorable: degrade instead of raising when a transition
            cannot be scored — zero scores plus a quarantine record in
            the health report (the streaming detector's lenient
            semantics).
        max_worker_restarts: total worker-respawn budget per run; dead
            workers are respawned with capped exponential backoff
            until it is spent.
        max_shard_retries: how many times one lost shard is requeued
            before the run escalates to ``ParallelExecutionError``.
        shard_deadline: seconds one shard may run before its worker is
            declared hung, killed, and the shard requeued (``None``
            disables the deadline).
        heartbeat_interval: worker heartbeat period for the supervisor
            (0/``None`` disables heartbeat supervision).
        heartbeat_timeout: tolerated heartbeat silence before a worker
            is declared wedged.
        chaos: optional :class:`~repro.resilience.chaos.ChaosSpec`
            injecting deterministic process faults into workers (test
            and chaos-drill hook).
        method, k, seed, solver, exact_limit, tol: commute-time backend
            configuration, as in :class:`~repro.core.cad.CadDetector`.
            Randomness always runs in ``seed_mode="content"`` so worker
            scheduling cannot influence scores.
        factor_cache, cache_budget_mb, delta_budget: factorization
            reuse (:mod:`repro.linalg.factorcache`). Each pool worker
            gets its own process-local cache (``"shared"`` is shared
            *within* a worker process across its chunks); cache hit
            counters merge back into the parent's metrics registry
            with the rest of the worker metrics.
    """

    name = "CAD"

    def __init__(self, workers: int | None = None,
                 shard_by: str = "auto",
                 chunk_size: int | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 1,
                 skip_unscorable: bool = False,
                 max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
                 max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
                 shard_deadline: float | None = None,
                 heartbeat_interval: float | None =
                 DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 chaos: ChaosSpec | None = None,
                 method: str = "auto",
                 k: int = 50,
                 seed=None,
                 solver="cg",
                 exact_limit: int = DEFAULT_EXACT_LIMIT,
                 tol: float = 1e-8,
                 factor_cache=None,
                 cache_budget_mb: float | None = None,
                 delta_budget: int | None = None,
                 _crash_transitions: tuple[int, ...] = ()):
        if workers is not None and workers < 1:
            raise ParallelExecutionError(
                f"workers must be >= 1, got {workers}"
            )
        validate_shard_mode(shard_by)
        self._workers = workers
        self._shard_by = shard_by
        self._chunk_size = chunk_size
        self._checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self._checkpoint_every = max(int(checkpoint_every), 1)
        self._skip_unscorable = bool(skip_unscorable)
        self._max_worker_restarts = int(max_worker_restarts)
        self._max_shard_retries = int(max_shard_retries)
        self._shard_deadline = shard_deadline
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = float(heartbeat_timeout)
        if chaos is None and _crash_transitions:
            # Legacy hook: a listed transition always kills its worker,
            # on every retry — the escalation scenario.
            chaos = ChaosSpec(
                kill_transitions=tuple(_crash_transitions),
                attempts=None,
            )
        self._chaos = chaos
        extra = {}
        if delta_budget is not None:
            extra["delta_budget"] = delta_budget
        self._calculator = CommuteTimeCalculator(
            method=method, k=k, seed=seed, solver=solver,
            exact_limit=exact_limit, tol=tol, seed_mode="content",
            factor_cache=factor_cache, cache_budget_mb=cache_budget_mb,
            **extra,
        )
        #: Per-worker health reports of the last run, keyed by worker id
        #: (process id, or ``ckpt:``-prefixed for restored state).
        self.last_worker_health: dict[str, HealthReport] = {}
        #: Per-worker metrics states of the last run (same keys as
        #: :attr:`last_worker_health`); populated only while metrics
        #: collection is enabled in the parent.
        self.last_worker_metrics: dict[str, dict[str, Any]] = {}
        #: Supervision events of the last run (worker respawns and
        #: shard requeues) — zero on an undisturbed run.
        self.last_pool_restarts = 0
        self.last_pool_retries = 0
        self._last_health: HealthReport | None = None

    @classmethod
    def from_detector(cls, detector, workers: int | None = None,
                      shard_by: str = "auto",
                      **options) -> "ParallelCadDetector":
        """Parallel twin of an existing serial ``CadDetector``.

        Copies the serial detector's backend configuration (method, k,
        root entropy, solver, limits) so that — under
        ``seed_mode="content"`` — both score identically.
        """
        spec = detector.calculator.spec()
        spec.pop("seed_mode", None)
        return cls(workers=workers, shard_by=shard_by, **spec, **options)

    @property
    def calculator(self) -> CommuteTimeCalculator:
        """The parent-side commute-time backend (serial odd jobs)."""
        return self._calculator

    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers or default_worker_count()

    def score_transition(self, g_t: GraphSnapshot,
                         g_t1: GraphSnapshot) -> TransitionScores:
        """Raw ΔE/ΔN scores for one transition, computed in-process.

        A single transition has no parallelism to exploit, so this is
        exactly the serial path on the parent's calculator.
        """
        return cad_edge_scores(g_t, g_t1, self._calculator)

    def score_sequence(self, graph: DynamicGraph) -> list[TransitionScores]:
        """Score every transition using the process pool."""
        if len(graph) < 2:
            raise DetectionError(
                "scoring a sequence needs at least two snapshots, got "
                f"{len(graph)}"
            )
        payloads, worker_states = self._run(graph)
        merged, per_worker = merge_worker_health(worker_states)
        self._last_health = merged
        self.last_worker_health = per_worker
        return assemble_transition_scores(graph, payloads)

    def detect(self, graph: DynamicGraph,
               anomalies_per_transition: int | None = None,
               delta: float | None = None) -> DetectionReport:
        """Algorithm 1 over the pool; same contract as the serial
        :meth:`~repro.core.cad.CadDetector.detect`."""
        if (anomalies_per_transition is None) == (delta is None):
            raise DetectionError(
                "specify exactly one of anomalies_per_transition or delta"
            )
        scored = self.score_sequence(graph)
        if delta is None:
            delta = select_global_threshold(scored, anomalies_per_transition)
        health = self._last_health
        return build_report(
            graph, scored, delta, self.name,
            health=None if health is None or health.is_empty() else health,
        )

    # -- pool orchestration --------------------------------------------------

    def _publish_sequence(self, graph: DynamicGraph):
        """Transport hook: make the snapshots reachable by workers.

        Returns ``(sequence_spec, cleanup)``. The default publishes
        the sequence to shared memory; remote transports (which ship
        the CSR arrays over the wire instead) return ``(None, noop)``.
        """
        store = SharedGraphSequence.publish(graph)
        return store.spec, store.cleanup

    def _make_transport(self, config: WorkerConfig,
                        graph: DynamicGraph, pool_size: int):
        """Transport hook: where the pool draws its workers from.

        ``None`` keeps the default
        :class:`~repro.parallel.transport.LocalProcessTransport`;
        :class:`~repro.cluster.ClusterEngine` overrides this to adopt
        registered remote workers over the socket transport.
        """
        return None

    def _run(self, graph: DynamicGraph,
             ) -> tuple[dict[int, dict[str, np.ndarray]],
                        dict[str, dict[str, Any]]]:
        resolved_method = self._calculator.resolve_method(graph.num_nodes)
        mode = resolve_shard_mode(self._shard_by, resolved_method, graph)
        if mode == "component" and resolved_method != "exact":
            raise ParallelExecutionError(
                "component sharding requires the exact commute-time "
                "backend (per-component embeddings would not match a "
                f"serial run); resolved method is {resolved_method!r}"
            )

        payloads: dict[int, dict[str, np.ndarray]] = {}
        worker_states: dict[str, dict[str, Any]] = {}
        fingerprint = None
        if self._checkpoint_path is not None:
            fingerprint = sequence_fingerprint(graph)
            if self._checkpoint_path.exists():
                payloads, restored = read_parallel_checkpoint(
                    self._checkpoint_path, fingerprint
                )
                worker_states = {
                    f"ckpt:{worker}": state
                    for worker, state in restored.items()
                }
        remaining = [
            t for t in range(graph.num_transitions) if t not in payloads
        ]
        if not remaining:
            return payloads, worker_states

        accumulators: dict[int, ComponentAccumulator] = {}
        if mode == "transition":
            tasks = [
                (score_transition_chunk, chunk)
                for chunk in plan_transition_chunks(
                    remaining, self.workers, self._chunk_size
                )
            ]
        else:
            shards, canonical = plan_component_shards(graph)
            shards = [s for s in shards if s.transition in remaining]
            expected: dict[int, int] = {}
            for shard in shards:
                expected[shard.transition] = (
                    expected.get(shard.transition, 0) + 1
                )
            for transition in remaining:
                rows, cols = canonical[transition]
                if transition in expected:
                    accumulators[transition] = ComponentAccumulator(
                        transition, rows, cols, graph.num_nodes,
                        expected[transition],
                    )
                else:
                    # Empty union support: nothing to score.
                    payloads[transition] = empty_transition_payload(
                        graph.num_nodes
                    )
            tasks = [(score_component_shard, shard) for shard in shards]

        newly_completed = 0
        worker_metrics: dict[str, dict[str, Any]] = {}
        if tasks:
            sequence_spec, sequence_cleanup = \
                self._publish_sequence(graph)
            try:
                spec = self._calculator.spec()
                config = WorkerConfig(
                    sequence=sequence_spec,
                    method=resolved_method,
                    k=self._calculator.k,
                    root_entropy=self._calculator.root_entropy(),
                    solver=spec["solver"],
                    tol=spec["tol"],
                    factor_cache=spec["factor_cache"],
                    cache_budget_mb=spec["cache_budget_mb"],
                    delta_budget=spec["delta_budget"],
                    skip_unscorable=self._skip_unscorable,
                    unregister_shm=(
                        multiprocessing.get_start_method() != "fork"
                    ),
                    collect_metrics=enabled(),
                    chaos=self._chaos,
                )
                pool_size = max(1, min(self.workers, len(tasks)))
                set_gauge("parallel_pool_size", pool_size)
                pool = SupervisedPool(
                    pool_size, config,
                    max_worker_restarts=self._max_worker_restarts,
                    max_shard_retries=self._max_shard_retries,
                    shard_deadline=self._shard_deadline,
                    heartbeat_interval=self._heartbeat_interval,
                    heartbeat_timeout=self._heartbeat_timeout,
                    transport=self._make_transport(config, graph,
                                                   pool_size),
                )
                with trace("parallel.run", mode=mode,
                           tasks=len(tasks), workers=pool_size), pool:
                    for result in pool.run(tasks):
                        worker_states[str(result["worker"])] = (
                            result["health"]
                        )
                        if result.get("metrics") is not None:
                            # States are cumulative per worker, so the
                            # last result to arrive carries the whole
                            # worker's history.
                            worker_metrics[str(result["worker"])] = (
                                result["metrics"]
                            )
                        if mode == "transition":
                            payloads.update(result["payloads"])
                            newly_completed += len(result["payloads"])
                        else:
                            accumulator = accumulators[
                                result["transition"]
                            ]
                            accumulator.add(result)
                            if accumulator.complete:
                                transition = accumulator.transition
                                payloads[transition] = (
                                    accumulator.payload()
                                )
                                del accumulators[transition]
                                newly_completed += 1
                        if (
                            self._checkpoint_path is not None
                            and newly_completed >= self._checkpoint_every
                        ):
                            write_parallel_checkpoint(
                                self._checkpoint_path, fingerprint,
                                payloads, worker_states,
                            )
                            newly_completed = 0
                self.last_pool_restarts = pool.restarts
                self.last_pool_retries = pool.retries
            except ParallelExecutionError:
                # Supervision gave up (budgets exhausted / no workers
                # left): persist completed work before escalating.
                if self._checkpoint_path is not None:
                    write_parallel_checkpoint(
                        self._checkpoint_path, fingerprint,
                        payloads, worker_states,
                    )
                raise
            finally:
                sequence_cleanup()

        if accumulators:
            incomplete = sorted(accumulators)
            raise ParallelExecutionError(
                f"transitions {incomplete[:8]} never completed all "
                "component shards"
            )
        if self._checkpoint_path is not None and newly_completed:
            write_parallel_checkpoint(
                self._checkpoint_path, fingerprint, payloads,
                worker_states,
            )
        self.last_worker_metrics = worker_metrics
        registry = current_registry()
        if registry is not None:
            # Fold each worker's cumulative metrics into the parent's
            # registry so the merged document covers the whole run.
            # Metrics deliberately stay out of parallel checkpoints:
            # they describe a run, not the work completed.
            for state in worker_metrics.values():
                registry.merge_state(state)
        return payloads, worker_states
