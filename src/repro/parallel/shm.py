"""Zero-copy snapshot transfer between processes via shared memory.

Shipping a dynamic graph to every pool worker through pickle would copy
each CSR snapshot once per worker per task. Instead the parent
*publishes* the whole sequence into three
:class:`multiprocessing.shared_memory.SharedMemory` blocks — the
concatenated ``data`` / ``indices`` / ``indptr`` arrays of every
snapshot — and workers attach by name and rebuild CSR matrices as
NumPy views directly into the shared pages. Per-task traffic is then
just shard indices and result arrays.

Lifecycle contract:

* the parent owns the blocks: :meth:`SharedGraphSequence.publish`
  creates them, :meth:`SharedGraphSequence.cleanup` closes *and
  unlinks* them (call from a ``finally``);
* workers attach with :class:`AttachedGraphSequence` at pool
  initialisation, hold the mapping for the pool's lifetime, and only
  ``close`` their handles — never unlink;
* nobody writes: the views alias memory shared by every process, so
  attached matrices must be treated as frozen (the snapshots built
  from them use the trusted
  :meth:`~repro.graphs.snapshot.GraphSnapshot._from_canonical` path,
  which performs no mutation).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..exceptions import ParallelExecutionError
from ..graphs.dynamic import DynamicGraph

_DATA_DTYPE = np.float64
_INDEX_DTYPE = np.int64


@dataclass(frozen=True)
class SnapshotLayout:
    """Where one snapshot's CSR arrays live inside the shared blocks.

    Attributes:
        data_start: element offset of this snapshot's ``data`` (and
            ``indices``) slice; both arrays have ``nnz`` elements.
        nnz: stored entry count of the snapshot.
        indptr_start: element offset of the ``indptr`` slice
            (``num_nodes + 1`` elements).
        time: the snapshot's time label (picklable by assumption —
            the same assumption checkpointing already makes).
    """

    data_start: int
    nnz: int
    indptr_start: int
    time: Any


@dataclass(frozen=True)
class SharedSequenceSpec:
    """Picklable description of a published sequence.

    Carries everything a worker needs to attach: the three block
    names, the per-snapshot layout, and the node count.
    """

    data_name: str
    indices_name: str
    indptr_name: str
    num_nodes: int
    layouts: tuple[SnapshotLayout, ...]


def _unregister(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    Attaching registers the segment with the attaching process's
    resource tracker (CPython < 3.13 has no opt-out). For *spawned*
    workers that tracker is their own: left registered, worker exit
    would unlink blocks the parent still owns. For *forked* workers
    (and same-process attachment) the tracker is shared with the
    parent, registration is a set-dedup no-op, and unregistering here
    would erase the parent's own bookkeeping — so the caller decides
    (see :class:`AttachedGraphSequence`).
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class SharedGraphSequence:
    """Parent-side owner of a sequence published to shared memory."""

    def __init__(self, spec: SharedSequenceSpec,
                 blocks: tuple[shared_memory.SharedMemory, ...]):
        self._spec = spec
        self._blocks = blocks
        self._closed = False

    @classmethod
    def publish(cls, graph: DynamicGraph) -> "SharedGraphSequence":
        """Copy a dynamic graph's CSR arrays into fresh shared blocks.

        This is the one unavoidable copy; every worker read after it
        is zero-copy.
        """
        token = secrets.token_hex(6)
        layouts: list[SnapshotLayout] = []
        data_start = 0
        indptr_start = 0
        for snapshot in graph:
            layouts.append(SnapshotLayout(
                data_start=data_start,
                nnz=int(snapshot.adjacency.nnz),
                indptr_start=indptr_start,
                time=snapshot.time,
            ))
            data_start += int(snapshot.adjacency.nnz)
            indptr_start += snapshot.num_nodes + 1
        total_nnz = data_start
        total_indptr = indptr_start

        def _block(tag: str, nbytes: int) -> shared_memory.SharedMemory:
            return shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1),
                name=f"repro-{token}-{tag}",
            )

        data_block = _block("data",
                            total_nnz * np.dtype(_DATA_DTYPE).itemsize)
        indices_block = _block("indices",
                               total_nnz * np.dtype(_INDEX_DTYPE).itemsize)
        indptr_block = _block("indptr",
                              total_indptr * np.dtype(_INDEX_DTYPE).itemsize)
        blocks = (data_block, indices_block, indptr_block)
        try:
            data_view = np.frombuffer(data_block.buf, dtype=_DATA_DTYPE,
                                      count=total_nnz)
            indices_view = np.frombuffer(indices_block.buf,
                                         dtype=_INDEX_DTYPE,
                                         count=total_nnz)
            indptr_view = np.frombuffer(indptr_block.buf,
                                        dtype=_INDEX_DTYPE,
                                        count=total_indptr)
            for snapshot, layout in zip(graph, layouts):
                matrix = snapshot.adjacency
                stop = layout.data_start + layout.nnz
                data_view[layout.data_start:stop] = matrix.data
                indices_view[layout.data_start:stop] = matrix.indices
                indptr_stop = layout.indptr_start + snapshot.num_nodes + 1
                indptr_view[layout.indptr_start:indptr_stop] = matrix.indptr
            del data_view, indices_view, indptr_view
        except Exception:
            for block in blocks:
                block.close()
                block.unlink()
            raise
        spec = SharedSequenceSpec(
            data_name=data_block.name,
            indices_name=indices_block.name,
            indptr_name=indptr_block.name,
            num_nodes=graph.num_nodes,
            layouts=tuple(layouts),
        )
        return cls(spec, blocks)

    @property
    def spec(self) -> SharedSequenceSpec:
        """The picklable attachment spec to ship to workers."""
        return self._spec

    def cleanup(self) -> None:
        """Close and unlink the shared blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedGraphSequence":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


class AttachedGraphSequence:
    """Worker-side view of a published sequence.

    Attributes:
        matrices: one canonical CSR matrix per snapshot, each a
            zero-copy view into the shared blocks. Treat as frozen.
        times: per-snapshot time labels.

    Args:
        spec: the parent's attachment spec.
        unregister: drop the segments from this process's resource
            tracker after attaching. Pass ``True`` only in workers that
            own a *private* tracker (spawn/forkserver start methods);
            forked workers and same-process attachment share the
            parent's tracker and must leave its registration alone.
    """

    def __init__(self, spec: SharedSequenceSpec,
                 unregister: bool = False):
        try:
            self._blocks = tuple(
                shared_memory.SharedMemory(name=name)
                for name in (spec.data_name, spec.indices_name,
                             spec.indptr_name)
            )
        except FileNotFoundError as exc:
            raise ParallelExecutionError(
                f"shared snapshot store is gone: {exc}"
            ) from exc
        if unregister:
            for block in self._blocks:
                _unregister(block)
        data_block, indices_block, indptr_block = self._blocks
        n = spec.num_nodes
        self.matrices: list[sp.csr_matrix] = []
        self.times: list[Any] = []
        for layout in spec.layouts:
            data = np.frombuffer(
                data_block.buf, dtype=_DATA_DTYPE,
                count=layout.nnz, offset=layout.data_start
                * np.dtype(_DATA_DTYPE).itemsize,
            )
            indices = np.frombuffer(
                indices_block.buf, dtype=_INDEX_DTYPE,
                count=layout.nnz, offset=layout.data_start
                * np.dtype(_INDEX_DTYPE).itemsize,
            )
            indptr = np.frombuffer(
                indptr_block.buf, dtype=_INDEX_DTYPE,
                count=n + 1, offset=layout.indptr_start
                * np.dtype(_INDEX_DTYPE).itemsize,
            )
            matrix = sp.csr_matrix((data, indices, indptr), shape=(n, n),
                                   copy=False)
            self.matrices.append(matrix)
            self.times.append(layout.time)

    def close(self) -> None:
        """Drop this process's mapping (the parent still owns the data)."""
        matrices, self.matrices = self.matrices, []
        del matrices
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - views still alive
                pass
