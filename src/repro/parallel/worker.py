"""Worker-process side of the parallel CAD engine.

Each pool worker is initialised once with a :class:`WorkerConfig`: it
attaches to the shared-memory snapshot store, rebuilds zero-copy
snapshots, and builds a worker-local
:class:`~repro.core.commute.CommuteTimeCalculator`. Two deliberate
choices keep worker output independent of scheduling:

* the calculator always runs ``seed_mode="content"`` with the parent's
  root entropy, so a snapshot's JL projection depends only on the
  snapshot, never on which worker scores it or in what order;
* the commute-time method is resolved in the *parent* from the full
  node count and forced here — a 500-node component of a 5000-node
  graph must not silently switch from the approximate to the exact
  backend.

Workers return plain-data payloads (numpy arrays + their cumulative
health state); all result-object assembly happens in the parent, in
transition order, so the merge is deterministic by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.commute import CommuteTimeCalculator
from ..core.scores import adjacency_change_on_pairs, cad_edge_scores
from ..exceptions import EmbeddingError, SolverError
from ..graphs.snapshot import GraphSnapshot, NodeUniverse
from ..linalg.pseudoinverse import laplacian_pseudoinverse
from ..observability import MetricsRegistry, enable, trace
from ..resilience.chaos import ChaosSpec
from .sharding import ComponentShard
from .shm import AttachedGraphSequence, SharedSequenceSpec

#: Payload array names a transition contributes to the merge/checkpoint.
PAYLOAD_ARRAYS = (
    "edge_rows", "edge_cols", "edge_scores",
    "adjacency_change", "commute_change", "node_scores",
)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs, shipped once at pool start.

    Attributes:
        sequence: shared-memory attachment spec for the snapshots.
        method: *resolved* commute-time method (``"exact"`` or
            ``"approx"`` — never ``"auto"``).
        k: embedding dimension for the approximate backend.
        root_entropy: run-level entropy anchoring content-keyed
            randomness (see
            :meth:`~repro.core.commute.CommuteTimeCalculator.root_entropy`).
        solver: Laplacian solver backend (string or a picklable
            :class:`~repro.resilience.fallback.FallbackPolicy`).
        tol: solver tolerance for the embedding path.
        skip_unscorable: degrade instead of raising when a transition's
            scoring fails — the failed transition gets zero scores and a
            quarantine record, mirroring the streaming detector's
            lenient mode.
        unregister_shm: whether workers own a private resource tracker
            and must unregister the shared blocks after attaching (true
            for spawn/forkserver pools, false for forked ones — see
            :mod:`repro.parallel.shm`).
        collect_metrics: enable a worker-local
            :class:`~repro.observability.MetricsRegistry`; its
            cumulative state rides back on every task result for the
            parent to merge.
        chaos: optional :class:`~repro.resilience.chaos.ChaosSpec`
            arming deterministic process faults (kill/hang/slow) on
            chosen transitions; attempt-aware, so the supervised pool's
            retries can demonstrably heal first-attempt faults.
        factor_cache: factorization-cache mode for the worker-local
            calculator (``"shared"``/``"private"``/``None``);
            ``"shared"`` is the *worker process's* singleton, so a
            worker reuses factorizations across all chunks it scores.
        cache_budget_mb: worker-local factor-cache byte budget.
        delta_budget: rank-one update budget
            (see :class:`~repro.core.commute.CommuteTimeCalculator`).
    """

    sequence: SharedSequenceSpec
    method: str
    k: int
    root_entropy: int
    solver: Any
    tol: float
    skip_unscorable: bool = False
    unregister_shm: bool = False
    collect_metrics: bool = False
    chaos: ChaosSpec | None = None
    factor_cache: str | None = None
    cache_budget_mb: float | None = None
    delta_budget: int | None = None


_STATE: dict[str, Any] = {}

#: Attempt index of the task currently executing (0 = first attempt).
#: Set by the supervised pool before each task so
#: :class:`~repro.resilience.chaos.ChaosSpec` faults can be
#: attempt-aware; plain pools never touch it, leaving every task at
#: attempt 0.
_TASK_ATTEMPT = 0


def set_task_attempt(attempt: int) -> None:
    """Record the running task's retry attempt (supervised pool hook)."""
    global _TASK_ATTEMPT
    _TASK_ATTEMPT = int(attempt)


def _chaos(config: WorkerConfig, transition: int) -> None:
    """Fire any armed chaos faults for ``transition``."""
    if config.chaos is not None:
        config.chaos.apply(transition, _TASK_ATTEMPT)


def init_worker(config: WorkerConfig) -> None:
    """Pool initializer: attach shared memory, build worker-local state."""
    registry = None
    if config.collect_metrics:
        registry = MetricsRegistry()
        enable(registry)
    with trace("worker.init", pid=os.getpid()):
        attached = AttachedGraphSequence(config.sequence,
                                         unregister=config.unregister_shm)
        universe = NodeUniverse.of_size(config.sequence.num_nodes)
        snapshots = [
            GraphSnapshot._from_canonical(matrix, universe, time)
            for matrix, time in zip(attached.matrices, attached.times)
        ]
        extra = {}
        if config.delta_budget is not None:
            extra["delta_budget"] = config.delta_budget
        calculator = CommuteTimeCalculator(
            method=config.method, k=config.k, seed=config.root_entropy,
            solver=config.solver, tol=config.tol, seed_mode="content",
            factor_cache=config.factor_cache,
            cache_budget_mb=config.cache_budget_mb,
            **extra,
        )
    _STATE.clear()
    _STATE.update(
        config=config,
        attached=attached,
        snapshots=snapshots,
        calculator=calculator,
        registry=registry,
    )


def _metrics_state() -> dict[str, Any] | None:
    """Cumulative metrics snapshot riding back on each task result."""
    registry: MetricsRegistry | None = _STATE.get("registry")
    return registry.state() if registry is not None else None


def _payload_from_scores(scores) -> dict[str, np.ndarray]:
    return {
        "edge_rows": scores.edge_rows,
        "edge_cols": scores.edge_cols,
        "edge_scores": scores.edge_scores,
        "adjacency_change": scores.extras["adjacency_change"],
        "commute_change": scores.extras["commute_change"],
        "node_scores": scores.node_scores,
    }


def _empty_payload(g_t, g_t1) -> dict[str, np.ndarray]:
    """Zero-score payload over the transition's union support."""
    from ..graphs.operations import union_support

    rows, cols = union_support(g_t, g_t1)
    zeros = np.zeros(rows.size)
    return {
        "edge_rows": rows,
        "edge_cols": cols,
        "edge_scores": zeros,
        "adjacency_change": adjacency_change_on_pairs(g_t, g_t1, rows, cols),
        "commute_change": zeros.copy(),
        "node_scores": np.zeros(g_t.num_nodes),
    }


def score_transition_chunk(transitions: tuple[int, ...]) -> dict[str, Any]:
    """Task function for the transition axis.

    Scores each listed transition with the exact serial code path
    (:func:`~repro.core.scores.cad_edge_scores` on the worker-local
    calculator), so payload arrays are bit-for-bit what a serial run
    produces.
    """
    config: WorkerConfig = _STATE["config"]
    snapshots = _STATE["snapshots"]
    calculator: CommuteTimeCalculator = _STATE["calculator"]
    payloads: dict[int, dict[str, np.ndarray]] = {}
    with trace("worker.chunk", transitions=len(transitions)):
        for transition in transitions:
            _chaos(config, transition)
            g_t, g_t1 = snapshots[transition], snapshots[transition + 1]
            try:
                payloads[transition] = _payload_from_scores(
                    cad_edge_scores(g_t, g_t1, calculator)
                )
            except (SolverError, EmbeddingError) as error:
                if not config.skip_unscorable:
                    raise
                calculator.health.record_quarantine(
                    position=transition + 1, time=g_t1.time,
                    reason=f"unscorable transition: {error}",
                )
                payloads[transition] = _empty_payload(g_t, g_t1)
    return {
        "worker": os.getpid(),
        "payloads": payloads,
        "health": calculator.health.state(),
        "metrics": _metrics_state(),
    }


def score_component_shard(shard: ComponentShard) -> dict[str, Any]:
    """Task function for the component axis (exact backend only).

    Computes commute times from the *per-component* Laplacian
    pseudoinverse but applies the *full-graph* volume, matching the
    serial block-pseudoinverse convention (``l+_ij = 0`` across
    components) without the rescaling division that would introduce
    extra rounding.
    """
    config: WorkerConfig = _STATE["config"]
    snapshots = _STATE["snapshots"]
    _chaos(config, shard.transition)
    with trace("worker.shard", transition=shard.transition,
               pairs=shard.rows.size):
        g_t = snapshots[shard.transition]
        g_t1 = snapshots[shard.transition + 1]
        # Unpickled arrays can arrive as views over pickle's read-only
        # frame buffer, which scipy's fancy indexing rejects; reown them.
        rows = np.array(shard.rows, dtype=np.int64, copy=True)
        cols = np.array(shard.cols, dtype=np.int64, copy=True)
        nodes = np.array(shard.nodes, dtype=np.int64, copy=True)
        adjacency_change = adjacency_change_on_pairs(g_t, g_t1, rows,
                                                     cols)
        local_rows = np.searchsorted(nodes, rows)
        local_cols = np.searchsorted(nodes, cols)
        commute_t = _component_commute_times(g_t, nodes,
                                             local_rows, local_cols)
        commute_t1 = _component_commute_times(g_t1, nodes,
                                              local_rows, local_cols)
        commute_change = np.abs(commute_t1 - commute_t)
    return {
        "worker": os.getpid(),
        "transition": shard.transition,
        "positions": shard.positions,
        "edge_scores": adjacency_change * commute_change,
        "adjacency_change": adjacency_change,
        "commute_change": commute_change,
        "health": _STATE["calculator"].health.state(),
        "metrics": _metrics_state(),
    }


def _component_commute_times(snapshot: GraphSnapshot,
                             nodes: np.ndarray,
                             local_rows: np.ndarray,
                             local_cols: np.ndarray) -> np.ndarray:
    """Commute times on one union component of a snapshot.

    Mirrors the serial exact path edge case for edge case:

    * edgeless full snapshot → all-zero commute times (the serial
      ``volume() <= 0`` guard);
    * nodes isolated inside the component → zero ``l+`` rows, exactly
      like their zero rows in the full-matrix pseudoinverse.
    """
    if local_rows.size == 0:
        return np.zeros(0)
    volume = snapshot.volume()
    if volume <= 0:
        return np.zeros(local_rows.size)
    sub = snapshot.adjacency[nodes][:, nodes]
    pseudoinverse = laplacian_pseudoinverse(sub)
    diagonal = np.diag(pseudoinverse)
    values = volume * (
        diagonal[local_rows] + diagonal[local_cols]
        - 2.0 * pseudoinverse[local_rows, local_cols]
    )
    return np.clip(values, 0.0, None)
