"""``python -m repro`` entry point (delegates to the CLI)."""

import sys

from .cli import main

sys.exit(main())
