"""Shared-prefix store: an object-store stand-in on a shared filesystem.

Several service replicas mount one prefix (NFS, a fuse-mounted bucket,
a shared volume) and coordinate through it. The layout is designed so
no crash, at any instant, can surface a torn object to a reader:

* **blob objects** (checkpoints, sidecars, lease records) are written
  as immutable *generation* files — ``objects/<key>.g<N>`` — and a
  small JSON **manifest** (``manifest/<key>``) naming the live
  generation with its size and BLAKE2b checksum. A put writes the new
  generation first (temp + fsync + rename), then atomically replaces
  the manifest, then garbage-collects the old generation. A crash
  between the two leaves the manifest pointing at the previous,
  complete generation — readers never see the half-written new one.
  Reads verify the checksum and raise
  :class:`~repro.store.base.StoreCorruptError` on bit rot.
* **log objects** (keys ending ``.wal``) live under ``logs/`` as plain
  fsynced append files: object stores don't append, real deployments
  put logs on a log-structured service, and the WAL format is
  torn-tail tolerant by design, so logs trade the manifest for append
  support. A put on a log key is an atomic whole-file replace (WAL
  compaction).

Key names are percent-encoded into flat filenames, so arbitrary keys
(slashes included) need no directory bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from urllib.parse import quote, unquote

from .base import (
    SessionStore,
    StoreCorruptError,
    StoreError,
    StoreKeyError,
    atomic_writer,
    check_key,
    fsync_dir,
    fsync_file,
)

#: Manifest format marker.
MANIFEST_FORMAT = "repro-store-manifest"
MANIFEST_VERSION = 1

#: Key suffix classifying an object as an append-able log.
LOG_SUFFIX = ".wal"


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


class SharedStore(SessionStore):
    """Crash-consistent multi-replica store on one shared prefix.

    Args:
        root: the shared prefix (created if missing).
        fsync: fsync data, manifests, and directories (disable only in
            tests).

    Attributes:
        hooks: test-only fault points — ``hooks["before_manifest"]``
            (called between the generation write and the manifest
            update) lets the chaos harness simulate a crash that tears
            a put in half; see
            :class:`repro.resilience.chaos.ChaosStore`.
    """

    scheme = "shared"

    def __init__(self, root: str | Path, fsync: bool = True):
        self._root = Path(root)
        self._fsync = bool(fsync)
        for name in ("objects", "manifest", "logs", "locks"):
            (self._root / name).mkdir(parents=True, exist_ok=True)
        self.hooks: dict[str, object] = {}

    @property
    def root(self) -> Path:
        """The shared prefix."""
        return self._root

    def describe(self) -> str:
        return f"{self.scheme}:{self._root}"

    def _lock_dir(self) -> Path:
        return self._root / "locks"

    def _fire(self, hook: str, key: str) -> None:
        callback = self.hooks.get(hook)
        if callback is not None:
            callback(key)  # type: ignore[operator]

    @staticmethod
    def _quoted(key: str) -> str:
        return quote(check_key(key), safe="")

    def _manifest_path(self, key: str) -> Path:
        return self._root / "manifest" / self._quoted(key)

    def _object_path(self, key: str, generation: int) -> Path:
        return self._root / "objects" / \
            f"{self._quoted(key)}.g{int(generation)}"

    def _log_path(self, key: str) -> Path:
        return self._root / "logs" / self._quoted(key)

    @staticmethod
    def _is_log(key: str) -> bool:
        return check_key(key).endswith(LOG_SUFFIX)

    def _read_manifest(self, key: str) -> dict:
        path = self._manifest_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise StoreKeyError(f"no object {key!r}") from None
        try:
            manifest = json.loads(raw)
            if manifest.get("format") != MANIFEST_FORMAT:
                raise ValueError("foreign manifest")
            int(manifest["generation"])
        except (ValueError, KeyError, TypeError) as error:
            raise StoreCorruptError(
                f"unreadable manifest for {key!r}: {error}"
            ) from error
        return manifest

    # -- SessionStore --------------------------------------------------------

    def put(self, key: str, data: bytes, guard=None,
            token: int | None = None) -> None:
        if self._is_log(key):
            # Whole-log replace (WAL compaction): atomic, no manifest.
            path = self._log_path(key)
            with atomic_writer(path, fsync=self._fsync) as temp:
                temp.write_bytes(data)
                if guard is not None:
                    guard()
            return
        try:
            generation = int(self._read_manifest(key)["generation"]) + 1
        except (StoreKeyError, StoreCorruptError):
            generation = 1
        object_path = self._object_path(key, generation)
        with atomic_writer(object_path, fsync=self._fsync) as temp:
            temp.write_bytes(data)
        try:
            if guard is not None:
                guard()
            self._fire("before_manifest", key)
            manifest = {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "key": key,
                "generation": generation,
                "size": len(data),
                "blake2b": _digest(data),
            }
            if token is not None:
                manifest["token"] = int(token)
            with atomic_writer(self._manifest_path(key),
                               fsync=self._fsync) as temp:
                temp.write_bytes(
                    json.dumps(manifest, sort_keys=True).encode()
                )
        except BaseException:
            # The guard or a chaos hook aborted the put after the new
            # generation landed: the manifest still names the old one,
            # so readers are unaffected; drop the orphan generation.
            object_path.unlink(missing_ok=True)
            raise
        # Garbage-collect superseded generations (best effort; an
        # orphan generation is invisible to readers either way).
        for stale in (self._root / "objects").glob(
                f"{self._quoted(key)}.g*"):
            if stale != object_path:
                stale.unlink(missing_ok=True)

    def get(self, key: str) -> bytes:
        if self._is_log(key):
            try:
                return self._log_path(key).read_bytes()
            except FileNotFoundError:
                raise StoreKeyError(f"no object {key!r}") from None
        manifest = self._read_manifest(key)
        object_path = self._object_path(key, manifest["generation"])
        try:
            data = object_path.read_bytes()
        except FileNotFoundError:
            raise StoreCorruptError(
                f"manifest for {key!r} names generation "
                f"{manifest['generation']} but the object is missing"
            ) from None
        if len(data) != int(manifest.get("size", -1)) or \
                _digest(data) != manifest.get("blake2b"):
            raise StoreCorruptError(
                f"checksum mismatch for {key!r} (generation "
                f"{manifest['generation']})"
            )
        return data

    def list(self, prefix: str = "") -> list[str]:
        keys = set()
        for path in (self._root / "manifest").iterdir():
            if path.is_file() and not path.name.startswith(".tmp-"):
                keys.add(unquote(path.name))
        for path in (self._root / "logs").iterdir():
            if path.is_file() and not path.name.startswith(".tmp-"):
                keys.add(unquote(path.name))
        return sorted(k for k in keys if k.startswith(prefix))

    def delete(self, key: str) -> None:
        # Manifest first: once it is gone the key no longer resolves,
        # and leftover generations are invisible orphans.
        self._manifest_path(key).unlink(missing_ok=True)
        for stale in (self._root / "objects").glob(
                f"{self._quoted(key)}.g*"):
            stale.unlink(missing_ok=True)
        self._log_path(key).unlink(missing_ok=True)

    def exists(self, key: str) -> bool:
        if self._is_log(key):
            return self._log_path(key).is_file()
        return self._manifest_path(key).is_file()

    def append(self, key: str, data: bytes, guard=None) -> None:
        if not self._is_log(key):
            raise StoreError(
                f"append is only supported on log objects "
                f"(*{LOG_SUFFIX}), not {key!r}"
            )
        path = self._log_path(key)
        with open(path, "ab") as handle:
            if guard is not None:
                guard()
            handle.write(data)
            if self._fsync:
                fsync_file(handle)

    def move(self, key: str, destination: str) -> None:
        """Raw move, corrupt objects included (the quarantine path).

        Generation files and the manifest are renamed without
        verification; the manifest's embedded ``key`` field becomes
        stale, which quarantined objects never read back.
        """
        moved = False
        source_quoted = self._quoted(key)
        dest_quoted = self._quoted(destination)
        manifest = self._manifest_path(key)
        if manifest.is_file():
            manifest.replace(self._root / "manifest" / dest_quoted)
            moved = True
        for generation in (self._root / "objects").glob(
                f"{source_quoted}.g*"):
            suffix = generation.name[len(source_quoted):]
            generation.replace(
                self._root / "objects" / f"{dest_quoted}{suffix}"
            )
            moved = True
        log = self._log_path(key)
        if log.is_file():
            log.replace(self._root / "logs" / dest_quoted)
            moved = True
        if not moved:
            raise StoreKeyError(f"no object {key!r}")
        if self._fsync:
            fsync_dir(self._root / "manifest")
            fsync_dir(self._root / "objects")
            fsync_dir(self._root / "logs")
