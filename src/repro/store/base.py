"""The durable-store contract behind the session tier.

A :class:`SessionStore` holds everything a detection session leaves on
disk — streaming checkpoints (npz), JSON sidecars, write-ahead logs,
and lease records — behind a small key/value interface so the service
can run against a local directory today and a shared (object-store
style) prefix tomorrow without the session layer changing:

* **atomic puts** — :meth:`SessionStore.put` never exposes a partially
  written object: backends stage to a temporary file, fsync, and
  rename, so a crash mid-write leaves either the old bytes or the new
  bytes, never a torn object;
* **durable appends** — :meth:`SessionStore.append` backs the
  write-ahead log (fsynced; the WAL format itself tolerates a torn
  trailing line);
* **compare-and-swap** — :meth:`SessionStore.cas` is the primitive the
  lease protocol builds on: concurrent writers race, exactly one wins;
* **fencing guards** — every write accepts a ``guard`` callable run
  immediately before the bytes become visible; the lease layer passes
  a token check there, so a replica that lost its lease mid-write is
  rejected at the last possible moment (see :mod:`repro.store.lease`).

Keys are relative POSIX-style paths (``<session>.npz``,
``leases/<session>.json``); backends map them to their own layout.
"""

from __future__ import annotations

import os
import tempfile
import time
import uuid
from abc import ABC, abstractmethod
from contextlib import contextmanager
from pathlib import Path, PurePosixPath

from ..exceptions import ReproError

#: Seconds after which an abandoned CAS lock file is broken (a crashed
#: process must not wedge every future lease operation).
LOCK_STALE_SECONDS = 5.0

#: How long :meth:`SessionStore.cas` waits for a contended lock before
#: giving up and reporting the swap as lost.
LOCK_WAIT_SECONDS = 5.0


class StoreError(ReproError):
    """Base class for durable-store failures."""


class StoreKeyError(StoreError):
    """The requested key does not exist."""


class StoreCorruptError(StoreError):
    """The object exists but fails integrity checks (bad checksum,
    torn manifest, unreadable archive)."""


class StoreUnavailableError(StoreError):
    """The store is temporarily unreachable (partition, injected
    fault). Retryable: the object's state is unknown but not damaged."""


class FencedWriteError(StoreError):
    """A write guard rejected the caller: its fencing token is stale
    (another replica now owns the session)."""


def check_key(key: str) -> str:
    """Validate and normalise a store key.

    Raises:
        StoreError: on absolute keys, empty keys, or ``..`` segments.
    """
    if not key:
        raise StoreError("store keys must be non-empty")
    pure = PurePosixPath(key)
    if pure.is_absolute() or ".." in pure.parts:
        raise StoreError(
            f"store keys must be relative without '..': {key!r}"
        )
    return str(pure)


def fsync_file(handle) -> None:
    """Flush and fsync one open file handle."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: str | Path, fsync: bool = True):
    """Write-temp + fsync + rename for an arbitrary destination file.

    Yields a temporary path in the destination's directory; on clean
    exit the temp file is fsynced and atomically renamed over the
    destination, so readers see either the old file or the new one,
    never a partial write. On error the temp file is removed and the
    destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.parent / f".tmp-{uuid.uuid4().hex}-{path.name}"
    try:
        yield temp
        if fsync:
            with open(temp, "rb+") as handle:
                fsync_file(handle)
        os.replace(temp, path)
        if fsync:
            fsync_dir(path.parent)
    finally:
        temp.unlink(missing_ok=True)


def atomic_write_bytes(path: str | Path, data: bytes,
                       fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    with atomic_writer(path, fsync=fsync) as temp:
        temp.write_bytes(data)


class SessionStore(ABC):
    """Abstract durable store for session state.

    All mutating methods accept an optional ``guard`` callable that is
    invoked immediately before the write becomes visible; raising from
    the guard (typically :class:`FencedWriteError`) aborts the write
    with the store unchanged (appends: nothing written). Backends must
    make :meth:`put` atomic and :meth:`append` durable.
    """

    #: Human-readable scheme used in ``--store <scheme>:<path>`` specs.
    scheme = "abstract"

    # -- required primitives -------------------------------------------------

    @abstractmethod
    def put(self, key: str, data: bytes, guard=None,
            token: int | None = None) -> None:
        """Atomically create or replace ``key`` with ``data``.

        ``token`` is the writer's fencing token; backends with
        object-level metadata stamp it there (the shared store's
        manifest) so operators can audit which lease wrote what.
        """

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the object's bytes.

        Raises:
            StoreKeyError: when the key does not exist.
            StoreCorruptError: when it exists but fails verification.
        """

    @abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove a key (idempotent: missing keys are a no-op)."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether the key currently resolves to an object."""

    @abstractmethod
    def append(self, key: str, data: bytes, guard=None) -> None:
        """Durably append raw bytes to a log object (created on first
        append). Append-class objects trade the checksum manifest for
        append support; their formats must be torn-tail tolerant (the
        fencing token travels inside the appended records instead)."""

    @abstractmethod
    def move(self, key: str, destination: str) -> None:
        """Move an object's raw bytes to another key *without*
        verification — the quarantine path must be able to move
        corrupt objects aside."""

    # -- compare-and-swap ----------------------------------------------------

    def cas(self, key: str, expected: bytes | None,
            new: bytes) -> bool:
        """Atomically replace ``key`` iff its current bytes equal
        ``expected`` (``None`` means *must not exist*).

        Returns:
            ``True`` when the swap happened, ``False`` when the
            current value did not match (or the lock could not be
            taken in time) — the caller re-reads and retries.
        """
        key = check_key(key)
        with self._cas_lock(key) as locked:
            if not locked:
                return False
            try:
                current: bytes | None = self.get(key)
            except StoreKeyError:
                current = None
            except StoreCorruptError:
                # A torn lease record cannot be trusted; any writer
                # may replace it.
                current = None
            if current != expected:
                return False
            self.put(key, new)
            return True

    @abstractmethod
    def _lock_dir(self) -> Path:
        """Directory holding CAS lock files (backend-chosen)."""

    @contextmanager
    def _cas_lock(self, key: str):
        """Serialise CAS on one key via an O_EXCL lock file.

        Stale locks (older than :data:`LOCK_STALE_SECONDS`) left by a
        crashed process are broken. Yields whether the lock was won.
        """
        lock_dir = self._lock_dir()
        lock_dir.mkdir(parents=True, exist_ok=True)
        lock = lock_dir / (key.replace("/", "%2F") + ".lck")
        deadline = time.monotonic() + LOCK_WAIT_SECONDS
        acquired = False
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                acquired = True
                break
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                    if age > LOCK_STALE_SECONDS:
                        lock.unlink(missing_ok=True)
                        continue
                except OSError:
                    continue  # vanished between open and stat
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.005)
        try:
            yield acquired
        finally:
            if acquired:
                lock.unlink(missing_ok=True)

    # -- conveniences --------------------------------------------------------

    def put_path(self, key: str, source: str | Path,
                 guard=None, token: int | None = None) -> None:
        """Upload a local file's bytes under ``key``."""
        self.put(key, Path(source).read_bytes(), guard=guard,
                 token=token)

    def get_to_path(self, key: str, destination: str | Path) -> Path:
        """Materialise an object into a local file and return its path."""
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_bytes(self.get(key))
        return destination

    @contextmanager
    def local_copy(self, key: str, suffix: str = ""):
        """Yield a temporary local file holding the object's bytes
        (for path-based readers like ``np.load``)."""
        with tempfile.TemporaryDirectory(prefix="repro-store-") as temp:
            yield self.get_to_path(
                key, Path(temp) / (f"object{suffix}" or "object")
            )

    def describe(self) -> str:
        """``scheme:location`` string for logs and banners."""
        return f"{self.scheme}:?"
