"""Session ownership: TTL leases with monotonic fencing tokens.

Exactly one replica may mutate a session at a time. Ownership is a
*lease record* in the store (``leases/<session>.json``), updated only
through compare-and-swap, carrying:

* ``owner`` — the holding replica's id;
* ``token`` — a **monotonic fencing token**, incremented on every
  acquisition (never on renewal). Every WAL append and checkpoint
  write is stamped with the writer's token, and the write guard
  (:meth:`LeaseManager.verify`) rejects any write whose token no
  longer matches the current record — a replica that lost its lease
  mid-write cannot clobber the new owner, no matter how delayed its
  writes are;
* ``expires_at`` — wall-clock expiry. The holder renews at a fraction
  of the TTL; when renewal stops (crash, partition), any replica may
  adopt the session once the TTL elapses.

A *released* record (graceful drain) keeps its token but expires
immediately, so failover after a clean shutdown needs no TTL wait.
Expiry uses wall-clock time across replicas; the deployment assumption
(NTP-synchronised clocks, TTL well above the skew) is documented in
``docs/distribution.md``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..observability import add_counter, get_logger
from .base import FencedWriteError, SessionStore, StoreCorruptError, StoreKeyError

_logger = get_logger("store.lease")

#: Format marker on lease records.
LEASE_FORMAT = "repro-session-lease"
LEASE_VERSION = 1

#: CAS attempts before an acquisition reports contention.
_CAS_ATTEMPTS = 5


def lease_key(session_id: str) -> str:
    """Store key of one session's lease record."""
    return f"leases/{session_id}.json"


@dataclass(frozen=True)
class LeaseRecord:
    """Decoded lease record as stored."""

    session_id: str
    owner: str
    token: int
    expires_at: float
    acquired_at: float
    released: bool = False

    def expired(self, now: float | None = None) -> bool:
        """Whether the lease no longer protects its session."""
        if self.released:
            return True
        return (time.time() if now is None else now) >= self.expires_at

    def remaining(self, now: float | None = None) -> float:
        """Seconds of protection left (0 when expired/released)."""
        if self.released:
            return 0.0
        now = time.time() if now is None else now
        return max(self.expires_at - now, 0.0)

    def to_bytes(self) -> bytes:
        return json.dumps({
            "format": LEASE_FORMAT,
            "version": LEASE_VERSION,
            "session": self.session_id,
            "owner": self.owner,
            "token": self.token,
            "expires_at": self.expires_at,
            "acquired_at": self.acquired_at,
            "released": self.released,
        }, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "LeaseRecord | None":
        """Decode a record; ``None`` on anything unparseable (an
        unreadable lease record protects nobody)."""
        try:
            document = json.loads(raw)
            if document.get("format") != LEASE_FORMAT:
                return None
            return cls(
                session_id=str(document["session"]),
                owner=str(document["owner"]),
                token=int(document["token"]),
                expires_at=float(document["expires_at"]),
                acquired_at=float(document["acquired_at"]),
                released=bool(document.get("released", False)),
            )
        except (ValueError, KeyError, TypeError):
            return None


@dataclass(frozen=True)
class Lease:
    """A held lease: the handle the session layer keeps per session."""

    session_id: str
    token: int
    expires_at: float

    def remaining(self) -> float:
        return max(self.expires_at - time.time(), 0.0)


class LeaseManager:
    """Acquire/renew/release session leases for one replica.

    Args:
        store: the shared store holding lease records.
        replica_id: this replica's stable identity.
        ttl: lease duration in seconds; the heartbeat should renew at
            ``ttl / 3`` or faster.
    """

    def __init__(self, store: SessionStore, replica_id: str,
                 ttl: float):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self._store = store
        self._replica_id = str(replica_id)
        self._ttl = float(ttl)

    @property
    def replica_id(self) -> str:
        return self._replica_id

    @property
    def ttl(self) -> float:
        return self._ttl

    # -- record access -------------------------------------------------------

    def peek(self, session_id: str) -> LeaseRecord | None:
        """The current lease record, or ``None`` when absent/torn."""
        try:
            raw = self._store.get(lease_key(session_id))
        except (StoreKeyError, StoreCorruptError):
            return None
        return LeaseRecord.from_bytes(raw)

    # -- protocol ------------------------------------------------------------

    def acquire(self, session_id: str) -> Lease | None:
        """Try to take ownership of a session.

        Succeeds when the lease is free, expired, released, or already
        ours (re-acquisition bumps the token — the previous handle's
        stamps go stale, which is exactly what fencing wants after an
        eviction/resurrection cycle). Returns ``None`` while another
        replica's unexpired lease stands, or under unresolved CAS
        contention.
        """
        key = lease_key(session_id)
        for _ in range(_CAS_ATTEMPTS):
            try:
                current_raw: bytes | None = self._store.get(key)
            except (StoreKeyError, StoreCorruptError):
                current_raw = None
            current = None if current_raw is None else \
                LeaseRecord.from_bytes(current_raw)
            takeover = False
            if current is not None:
                if not current.expired() and \
                        current.owner != self._replica_id:
                    return None
                if current.owner != self._replica_id and \
                        not current.released:
                    # Another replica's lease ran out un-released: the
                    # canonical failover trigger.
                    add_counter("service_lease_expiries_total")
                    takeover = True
            now = time.time()
            record = LeaseRecord(
                session_id=session_id,
                owner=self._replica_id,
                token=(current.token if current is not None else 0) + 1,
                expires_at=now + self._ttl,
                acquired_at=now,
                released=False,
            )
            if self._store.cas(key, current_raw, record.to_bytes()):
                add_counter("service_lease_acquires_total")
                if takeover:
                    _logger.warning(
                        "adopted expired lease of session %s from %s "
                        "(token %d)", session_id, current.owner,
                        record.token,
                    )
                return Lease(session_id, record.token,
                             record.expires_at)
        return None

    def renew(self, lease: Lease) -> Lease | None:
        """Extend a held lease; ``None`` means ownership was lost."""
        key = lease_key(lease.session_id)
        for _ in range(_CAS_ATTEMPTS):
            try:
                current_raw = self._store.get(key)
            except (StoreKeyError, StoreCorruptError):
                return None
            current = LeaseRecord.from_bytes(current_raw)
            if current is None or current.owner != self._replica_id \
                    or current.token != lease.token:
                add_counter("service_lease_expiries_total")
                return None
            now = time.time()
            record = LeaseRecord(
                session_id=lease.session_id,
                owner=self._replica_id,
                token=lease.token,
                expires_at=now + self._ttl,
                acquired_at=current.acquired_at,
                released=False,
            )
            if self._store.cas(key, current_raw, record.to_bytes()):
                add_counter("service_lease_renewals_total")
                return Lease(lease.session_id, lease.token,
                             record.expires_at)
        return None

    def release(self, lease: Lease) -> bool:
        """Give the lease up gracefully (drain): the record keeps its
        token — monotonicity survives — but expires immediately, so
        another replica adopts without waiting out the TTL."""
        key = lease_key(lease.session_id)
        for _ in range(_CAS_ATTEMPTS):
            try:
                current_raw = self._store.get(key)
            except (StoreKeyError, StoreCorruptError):
                return False
            current = LeaseRecord.from_bytes(current_raw)
            if current is None or current.owner != self._replica_id \
                    or current.token != lease.token:
                return False
            record = LeaseRecord(
                session_id=lease.session_id,
                owner=self._replica_id,
                token=lease.token,
                expires_at=0.0,
                acquired_at=current.acquired_at,
                released=True,
            )
            if self._store.cas(key, current_raw, record.to_bytes()):
                return True
        return False

    def forget(self, session_id: str) -> None:
        """Delete the lease record outright (session deletion)."""
        self._store.delete(lease_key(session_id))

    # -- fencing -------------------------------------------------------------

    def verify(self, session_id: str, token: int) -> None:
        """Write guard: raise unless ``token`` still owns the session.

        A missing record, a different owner, or a different token all
        mean a newer acquisition happened — the caller's writes must
        not land. (An expired-but-unclaimed record still owned by us
        passes: nobody else took over, so the write is harmless and
        the next heartbeat re-extends; rejecting on expiry alone would
        turn clock skew into spurious write failures.)
        """
        record = self.peek(session_id)
        if record is None or record.owner != self._replica_id or \
                record.token != int(token):
            holder = "nobody" if record is None else \
                f"{record.owner} (token {record.token})"
            raise FencedWriteError(
                f"stale fencing token {token} for session "
                f"{session_id}: lease now held by {holder}"
            )

    def guard(self, session_id: str, token: int):
        """The ``guard`` callable store writes take."""
        return lambda: self.verify(session_id, token)
