"""The replica catalogue: who is alive, and where to reach them.

Replicas that share a ``shared:`` store advertise themselves as
TTL-stamped records under ``replicas/<id>.json`` — the same
store-as-coordination-plane idiom as :mod:`repro.store.lease`, minus
the fencing: each replica owns its *own* key, so plain last-writer-wins
puts suffice. A record is refreshed on the advertising replica's
heartbeat cadence and considered live until its TTL elapses, which
means a SIGKILLed replica vanishes from the catalogue within one TTL
without any cleanup of its own.

Consumers:

* ``GET /replicas`` surfaces the live catalogue to clients;
* :class:`~repro.cluster.client.ClusterClient` uses it to learn a
  session owner's address after a ``not_session_owner`` rejection;
* :class:`~repro.service.sessions.SessionManager` embeds the owner's
  advertised URL in 503/307 ownership hints.

Expiry uses wall-clock time across replicas, under the same
NTP-synchronised-clocks assumption the lease tier documents.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any

from ..observability import get_logger
from .base import SessionStore, StoreCorruptError, StoreError, StoreKeyError

_logger = get_logger("store.catalog")

#: Format marker on catalogue records.
CATALOG_FORMAT = "repro-replica-record"
CATALOG_VERSION = 1

#: Store-key prefix of the catalogue.
CATALOG_PREFIX = "replicas/"

#: Default record TTL (seconds); refreshed at a third of this.
DEFAULT_CATALOG_TTL = 15.0


def replica_key(replica_id: str) -> str:
    """Store key of one replica's catalogue record."""
    return f"{CATALOG_PREFIX}{replica_id}.json"


@dataclass(frozen=True)
class ReplicaRecord:
    """One replica's advertisement, as stored."""

    replica_id: str
    url: str
    expires_at: float
    updated_at: float

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at

    def to_bytes(self) -> bytes:
        return json.dumps({
            "format": CATALOG_FORMAT,
            "version": CATALOG_VERSION,
            "replica": self.replica_id,
            "url": self.url,
            "expires_at": self.expires_at,
            "updated_at": self.updated_at,
        }, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReplicaRecord":
        try:
            document = json.loads(data)
            if document.get("format") != CATALOG_FORMAT:
                raise ValueError(
                    f"not a replica record: format="
                    f"{document.get('format')!r}"
                )
            return cls(
                replica_id=str(document["replica"]),
                url=str(document["url"]),
                expires_at=float(document["expires_at"]),
                updated_at=float(document["updated_at"]),
            )
        except (ValueError, KeyError, TypeError) as error:
            raise StoreCorruptError(
                f"corrupt replica record: {error}"
            ) from error

    def describe(self) -> dict[str, Any]:
        return {
            "replica": self.replica_id,
            "url": self.url,
            "expires_in": round(max(self.expires_at - time.time(), 0.0),
                                3),
        }


class ReplicaCatalog:
    """Advertise this replica and read the others' advertisements.

    Args:
        store: the (ideally shared) session store.
        replica_id: this replica's identity.
        ttl: record lifetime; refresh at ``ttl / 3`` to survive two
            missed refreshes.
    """

    def __init__(self, store: SessionStore, replica_id: str,
                 ttl: float = DEFAULT_CATALOG_TTL):
        if ttl <= 0:
            raise ValueError(f"catalog ttl must be > 0, got {ttl}")
        self._store = store
        self._replica_id = replica_id
        self.ttl = float(ttl)
        self._url: str | None = None

    @property
    def url(self) -> str | None:
        """This replica's advertised URL (``None`` until advertised)."""
        return self._url

    def advertise(self, url: str) -> ReplicaRecord:
        """Write (or refresh) this replica's record."""
        self._url = url
        now = time.time()
        record = ReplicaRecord(
            replica_id=self._replica_id, url=url,
            expires_at=now + self.ttl, updated_at=now,
        )
        self._store.put(replica_key(self._replica_id),
                        record.to_bytes())
        return record

    def refresh(self) -> None:
        """Re-advertise the current URL (heartbeat-cadence call)."""
        if self._url is not None:
            try:
                self.advertise(self._url)
            except StoreError as error:
                # Partitioned from the store: the record will expire;
                # re-advertising resumes once the store heals.
                _logger.warning("catalogue refresh failed: %s", error)

    def withdraw(self) -> None:
        """Remove this replica's record (graceful shutdown)."""
        self._url = None
        try:
            self._store.delete(replica_key(self._replica_id))
        except (StoreKeyError, StoreError):
            pass

    def live(self) -> list[ReplicaRecord]:
        """Every unexpired record, sorted by replica id."""
        records = []
        now = time.time()
        try:
            keys = self._store.list(CATALOG_PREFIX)
        except StoreError:
            return []
        for key in keys:
            try:
                record = ReplicaRecord.from_bytes(self._store.get(key))
            except (StoreError, StoreCorruptError):
                continue
            if not record.expired(now):
                records.append(record)
        return sorted(records, key=lambda r: r.replica_id)

    def lookup(self, replica_id: str) -> ReplicaRecord | None:
        """One replica's live record, or ``None``."""
        try:
            record = ReplicaRecord.from_bytes(
                self._store.get(replica_key(replica_id))
            )
        except (StoreError, StoreCorruptError):
            return None
        return None if record.expired() else record
