"""Local-directory store: today's checkpoint layout behind the
:class:`~repro.store.base.SessionStore` interface.

Keys map one-to-one onto files under the root directory
(``abc.npz`` -> ``<root>/abc.npz``), so a directory written by a
pre-store version of the service is adopted unchanged, and everything
this store writes remains readable by path-based tooling. Writes are
atomic (temp + fsync + rename in the destination directory) and
appends are fsynced, matching the durability the WAL and checkpoint
formats assume.
"""

from __future__ import annotations

import os
from pathlib import Path

from .base import (
    SessionStore,
    StoreError,
    StoreKeyError,
    atomic_writer,
    check_key,
    fsync_dir,
    fsync_file,
)

#: Directory (under the root) holding CAS lock files; skipped by
#: :meth:`LocalDirStore.list` along with in-flight temp files.
LOCKS_DIR = ".locks"


class LocalDirStore(SessionStore):
    """One directory, one file per key — byte-compatible with the
    pre-store checkpoint layout.

    Args:
        root: directory holding every object (created if missing).
        fsync: fsync data and directories on write (disable only in
            tests that don't care about durability).
    """

    scheme = "local"

    def __init__(self, root: str | Path, fsync: bool = True):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)

    @property
    def root(self) -> Path:
        """The backing directory."""
        return self._root

    def describe(self) -> str:
        return f"{self.scheme}:{self._root}"

    def _path(self, key: str) -> Path:
        return self._root / check_key(key)

    def _lock_dir(self) -> Path:
        return self._root / LOCKS_DIR

    # -- SessionStore --------------------------------------------------------

    def put(self, key: str, data: bytes, guard=None,
            token: int | None = None) -> None:
        # ``token`` audit metadata has nowhere to live in a plain
        # file; fencing still applies through the guard.
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_writer(path, fsync=self._fsync) as temp:
            temp.write_bytes(data)
            if guard is not None:
                guard()

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise StoreKeyError(f"no object {key!r}") from None
        except IsADirectoryError:
            raise StoreKeyError(f"{key!r} is not an object") from None

    def list(self, prefix: str = "") -> list[str]:
        keys = []
        for path in self._root.rglob("*"):
            if not path.is_file():
                continue
            key = path.relative_to(self._root).as_posix()
            if key.startswith(f"{LOCKS_DIR}/") or \
                    path.name.startswith(".tmp-"):
                continue
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def delete(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def append(self, key: str, data: bytes, guard=None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as handle:
            if guard is not None:
                guard()
            handle.write(data)
            if self._fsync:
                fsync_file(handle)

    def move(self, key: str, destination: str) -> None:
        source = self._path(key)
        target = self._path(destination)
        if not source.exists():
            raise StoreKeyError(f"no object {key!r}")
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(source, target)
        except OSError as error:
            raise StoreError(
                f"cannot move {key!r} to {destination!r}: {error}"
            ) from error
        if self._fsync:
            fsync_dir(target.parent)
