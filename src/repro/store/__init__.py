"""repro.store — pluggable durable storage for the session tier.

The :class:`SessionStore` interface decouples the detection service
from where its state lives:

* :class:`LocalDirStore` — one directory, one file per key;
  byte-compatible with the pre-store checkpoint layout (``local:<dir>``).
* :class:`SharedStore` — a shared-filesystem prefix standing in for an
  object store: immutable generation files, checksum manifests,
  crash-consistent updates, shared by many replicas (``shared:<dir>``).

:mod:`repro.store.lease` adds session ownership on top: TTL leases
renewed by heartbeat, adopted on expiry, and enforced by monotonic
fencing tokens checked at every write. See ``docs/distribution.md``.
"""

from .base import (
    FencedWriteError,
    SessionStore,
    StoreCorruptError,
    StoreError,
    StoreKeyError,
    StoreUnavailableError,
    atomic_write_bytes,
    atomic_writer,
)
from .catalog import ReplicaCatalog, ReplicaRecord, replica_key
from .lease import Lease, LeaseManager, LeaseRecord, lease_key
from .local import LocalDirStore
from .shared import SharedStore

#: Store spec schemes accepted by :func:`resolve_store`.
STORE_SCHEMES = ("local", "shared")


def resolve_store(spec: "str | SessionStore") -> SessionStore:
    """Build a store from a ``<scheme>:<path>`` spec string.

    ``local:<dir>`` wraps a plain directory (the default layout);
    ``shared:<dir>`` opens a shared multi-replica prefix. A bare path
    (no scheme) is treated as ``local:`` for convenience. An already
    constructed store passes through unchanged.
    """
    if isinstance(spec, SessionStore):
        return spec
    scheme, separator, location = str(spec).partition(":")
    if not separator:
        scheme, location = "local", str(spec)
    if not location:
        raise StoreError(f"store spec {spec!r} is missing a path")
    if scheme == "local":
        return LocalDirStore(location)
    if scheme == "shared":
        return SharedStore(location)
    raise StoreError(
        f"unknown store scheme {scheme!r} (expected one of "
        f"{STORE_SCHEMES})"
    )


__all__ = [
    "FencedWriteError",
    "Lease",
    "LeaseManager",
    "LeaseRecord",
    "LocalDirStore",
    "ReplicaCatalog",
    "ReplicaRecord",
    "STORE_SCHEMES",
    "SessionStore",
    "SharedStore",
    "StoreCorruptError",
    "StoreError",
    "StoreKeyError",
    "StoreUnavailableError",
    "atomic_write_bytes",
    "atomic_writer",
    "lease_key",
    "replica_key",
    "resolve_store",
]
