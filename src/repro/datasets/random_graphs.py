"""Scalability workloads: random sparse graph transition pairs.

Section 4.1.3 times the five detectors on symmetric random graphs of
growing size at fixed sparsity (``m = O(n)``). This module produces
transition pairs — a random sparse graph plus a perturbed successor —
sized for that study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import as_rng, check_positive_int
from ..graphs.dynamic import DynamicGraph
from ..graphs.generators import perturb_weights, random_sparse_graph
from ..graphs.snapshot import GraphSnapshot


@dataclass(frozen=True)
class ScalabilityInstance:
    """A two-snapshot random transition for runtime measurement.

    Attributes:
        graph: the dynamic graph (2 snapshots, shared universe).
        num_nodes: n.
        num_edges: mean edge count across the two snapshots.
    """

    graph: DynamicGraph
    num_nodes: int
    num_edges: float


def generate_scalability_instance(n: int,
                                  mean_degree: float = 2.0,
                                  churn_edges: int | None = None,
                                  seed=None) -> ScalabilityInstance:
    """Random sparse transition with both weight drift and edge churn.

    Args:
        n: node count (the paper sweeps up to 1e7; pure-Python scales
            to ~1e5–1e6 in reasonable wall-clock).
        mean_degree: average degree, default 2 (the paper's sparsity
            level of m = n).
        churn_edges: number of edges added at random in the second
            snapshot (defaults to ``max(1, n // 100)``).
        seed: int seed or numpy Generator.
    """
    n = check_positive_int(n, "n")
    rng = as_rng(seed)
    first = random_sparse_graph(
        n, mean_degree=mean_degree, seed=rng, connected=True
    )
    drifted = perturb_weights(first, relative_noise=0.1, seed=rng)
    if churn_edges is None:
        churn_edges = max(1, n // 100)
    rows = rng.integers(0, n, size=churn_edges)
    cols = rng.integers(0, n, size=churn_edges)
    keep = rows != cols
    weights = rng.uniform(0.5, 1.5, size=keep.sum())
    extra = sp.coo_matrix(
        (weights, (rows[keep], cols[keep])), shape=(n, n)
    ).tocsr()
    extra = extra.maximum(extra.T)
    second = GraphSnapshot(
        drifted.adjacency.maximum(extra), first.universe
    )
    graph = DynamicGraph([first, second])
    return ScalabilityInstance(
        graph=graph,
        num_nodes=n,
        num_edges=graph.mean_num_edges(),
    )
