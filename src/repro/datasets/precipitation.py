"""World-precipitation network simulator (Section 4.2.3).

The paper builds, per month, a 10-nearest-neighbour graph over 67,420
land locations where neighbours are found in *precipitation-value
space* (so geographically distant but rainfall-similar regions become
adjacent — that is how the reported anomalous edges connect southern
Africa to eastern equatorial Africa and Brazil) with Gaussian-kernel
edge weights ``exp(-||p_i - p_j||^2 / (2 sigma^2))``. It then runs CAD
on each month-of-year sequence (21 Januaries, 21 Februaries, ...) and
verifies the 1994→1995 January anomalies against the La Niña pattern.

Climate model. Real monthly rainfall is *regionally coherent*: a
location's value is dominated by its climate class (tropical, arid,
temperate...), whole regions swing together between years, and local
noise is comparatively small. The simulator mirrors that structure —
it is what makes value-space neighbourhoods stable enough for graph
anomalies to mean something:

* each grid cell belongs to a **climate class** (discrete base
  rainfall level), derived from a smooth latitude climatology and
  quantised; the named regions are forced to a single class each, so
  e.g. southern Africa, Brazil, equatorial Africa, the Amazon and
  Malaysia share the tropical class and are value-space neighbours
  across continents;
* **regional (block) noise**: contiguous grid blocks swing together
  between years;
* small per-cell local noise.

The injected La Niña-style **teleconnection year** applies
simultaneous, subtle shifts: southern Africa, Brazil and Malaysia get
wetter; Peru and Australia get drier; eastern equatorial Africa and
the Amazon basin stay put. The wet-shifted regions drift out of the
tropical value cluster (away from their unchanged neighbours — Case
3-style edge weakenings) and towards each other (Case 2-style new
ties), which is exactly the signature reported in Figures 9/10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import DatasetError
from ..graphs.builders import knn_graph
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import NodeUniverse

#: Named regions as (lat_min, lat_max, lon_min, lon_max) boxes.
REGIONS: dict[str, tuple[float, float, float, float]] = {
    "southern_africa": (-30.0, -15.0, 15.0, 35.0),
    "eastern_equatorial_africa": (-5.0, 10.0, 30.0, 45.0),
    "brazil": (-20.0, -5.0, -60.0, -40.0),
    "amazon_basin": (-5.0, 5.0, -70.0, -55.0),
    "peru": (-15.0, -5.0, -80.0, -70.0),
    "malaysia": (-5.0, 10.0, 95.0, 120.0),
    "australia": (-30.0, -20.0, 120.0, 145.0),
}

#: Climate class (index into the level ladder) forced on each named
#: region: the tropics-like wet class for the equatorial belt regions,
#: a semi-arid class for Peru and inland Australia.
REGION_CLASSES: dict[str, int] = {
    "southern_africa": 4,
    "eastern_equatorial_africa": 4,
    "brazil": 4,
    "amazon_basin": 4,
    "malaysia": 4,
    "peru": 1,
    "australia": 1,
}

#: Regional rainfall shift applied during the teleconnection year, in
#: units of the class-ladder spacing (subtle: well under one class).
EVENT_SHIFTS: dict[str, float] = {
    "southern_africa": +0.55,
    "brazil": +0.55,
    "malaysia": +0.65,
    "peru": -0.55,
    "australia": -0.55,
    # eastern_equatorial_africa and amazon_basin deliberately absent:
    # their rainfall does not change, which is what turns the wet/dry
    # shifts of their value-space neighbours into anomalous edges.
}


@dataclass(frozen=True)
class PrecipitationData:
    """Simulated precipitation networks plus ground truth.

    Attributes:
        graph: per-year dynamic graph for one calendar month
            (time labels are years).
        values: ``(num_years, n)`` precipitation values behind the
            graphs.
        latitudes / longitudes: node coordinates, length n.
        region_nodes: region name -> node index array.
        event_year_index: index of the teleconnection year within the
            sequence (the anomalous transition is
            ``event_year_index - 1``).
        years: the simulated year labels.
    """

    graph: DynamicGraph
    values: np.ndarray
    latitudes: np.ndarray
    longitudes: np.ndarray
    region_nodes: dict[str, np.ndarray]
    event_year_index: int
    years: tuple[int, ...]

    @property
    def event_transition(self) -> int:
        """The transition index at which the event appears."""
        return self.event_year_index - 1

    def shifted_nodes(self) -> np.ndarray:
        """Indices of all nodes inside shift regions (ground truth)."""
        parts = [
            self.region_nodes[name] for name in EVENT_SHIFTS
            if name in self.region_nodes
        ]
        return np.unique(np.concatenate(parts))

    def node_region(self, index: int) -> str | None:
        """Region name containing node ``index`` (None if outside all)."""
        for name, nodes in self.region_nodes.items():
            if index in nodes:
                return name
        return None

    def yearly_region_means(self, region: str) -> np.ndarray:
        """Mean rainfall of a region per year (Figure 10's series)."""
        nodes = self.region_nodes[region]
        return self.values[:, nodes].mean(axis=1)


class PrecipitationSimulator:
    """Simulates the per-month precipitation graph sequence.

    Args:
        lat_step / lon_step: grid resolution in degrees (the paper's
            0.5° grid has 67,420 land cells; the default keeps the
            exact commute backend comfortable while preserving the
            regional geometry).
        num_years: sequence length (paper: 21, 1982–2002).
        event_year: calendar year of the teleconnection event
            (paper: 1995).
        start_year: first simulated year.
        knn: neighbours per node in value space (paper: 10).
        num_classes: rungs of the climate-class ladder.
        class_spacing: rainfall gap between consecutive classes.
        block_noise_std: std of the shared per-block interannual swing
            (in rainfall units).
        local_noise_std: std of per-cell noise.
        block_cells: grid block edge length (cells) sharing one swing.
        seed: int seed or numpy Generator.
    """

    def __init__(self, lat_step: float = 7.5,
                 lon_step: float = 7.5,
                 num_years: int = 21,
                 start_year: int = 1982,
                 event_year: int = 1995,
                 knn: int = 10,
                 num_classes: int = 6,
                 class_spacing: float = 1.0,
                 static_spread: float = 0.45,
                 block_noise_std: float = 0.08,
                 local_noise_std: float = 0.03,
                 block_cells: int = 3,
                 seed=None):
        if lat_step <= 0 or lon_step <= 0:
            raise DatasetError("grid steps must be positive")
        self._lat_step = float(lat_step)
        self._lon_step = float(lon_step)
        self._num_years = check_positive_int(num_years, "num_years")
        self._start_year = int(start_year)
        self._event_year = int(event_year)
        if not (start_year < event_year < start_year + num_years):
            raise DatasetError(
                f"event year {event_year} outside simulated span "
                f"[{start_year}, {start_year + num_years - 1}]"
            )
        self._knn = check_positive_int(knn, "knn")
        self._num_classes = check_positive_int(num_classes, "num_classes")
        self._class_spacing = float(class_spacing)
        self._static_spread = float(static_spread)
        self._block_noise_std = float(block_noise_std)
        self._local_noise_std = float(local_noise_std)
        self._block_cells = check_positive_int(block_cells, "block_cells")
        self._rng = as_rng(seed)

    def generate(self, month: int = 1) -> PrecipitationData:
        """Simulate one calendar month's yearly graph sequence.

        Args:
            month: calendar month 1..12 (the paper's headline result
                uses January).
        """
        if not 1 <= month <= 12:
            raise DatasetError(f"month must be 1..12, got {month}")
        rng = self._rng
        latitudes, longitudes, shape = self._grid()
        n = latitudes.size
        universe = NodeUniverse(
            [f"loc_{lat:+.1f}_{lon:+.1f}"
             for lat, lon in zip(latitudes, longitudes)]
        )
        region_nodes = {
            name: self._nodes_in_box(latitudes, longitudes, box)
            for name, box in REGIONS.items()
        }
        for name, nodes in region_nodes.items():
            if nodes.size == 0:
                raise DatasetError(
                    f"grid too coarse: region {name} has no nodes"
                )

        classes = self._climate_classes(
            latitudes, longitudes, month, region_nodes
        )
        base = (classes + 1.0) * self._class_spacing
        # Static per-cell microclimate: every location keeps a stable
        # identity inside its class band across years. Named regions
        # get one shared offset (regional coherence) plus a whisper of
        # per-cell texture.
        static = self._static_spread * rng.uniform(-1.0, 1.0, size=n)
        for name in REGIONS:
            nodes = region_nodes[name]
            shared = 0.6 * self._static_spread * rng.uniform(-1.0, 1.0)
            static[nodes] = shared + 0.05 * rng.uniform(
                -1.0, 1.0, size=nodes.size
            )
        base = base + static
        blocks = self._block_ids(shape, region_nodes, n)
        num_blocks = int(blocks.max()) + 1

        event_index = self._event_year - self._start_year
        years = tuple(
            self._start_year + i for i in range(self._num_years)
        )
        shift_units = self._class_spacing
        values = np.empty((self._num_years, n))
        snapshots = []
        for i, year in enumerate(years):
            block_swings = self._block_noise_std * rng.standard_normal(
                num_blocks
            )
            rainfall = (
                base
                + block_swings[blocks]
                + self._local_noise_std * rng.standard_normal(n)
            )
            if i == event_index:
                for region, shift in EVENT_SHIFTS.items():
                    nodes = region_nodes[region]
                    rainfall[nodes] += shift * shift_units
            rainfall = np.clip(rainfall, 0.05, None)
            values[i] = rainfall
            bandwidth = max(float(np.std(rainfall)) / 2.0, 1e-6)
            snapshots.append(knn_graph(
                rainfall, k=self._knn, bandwidth=bandwidth,
                universe=universe, time=year,
            ))
        return PrecipitationData(
            graph=DynamicGraph(snapshots),
            values=values,
            latitudes=latitudes,
            longitudes=longitudes,
            region_nodes=region_nodes,
            event_year_index=event_index,
            years=years,
        )

    def generate_all_months(self) -> dict[int, PrecipitationData]:
        """Simulate all 12 calendar-month sequences (paper §4.2.3).

        The paper "applies CAD to each of the 12 sequences of 21
        graphs each"; this returns the datasets keyed by month. The
        teleconnection event is injected in every month of the event
        year, strongest in the January data (its shifts are defined in
        units of the January noise), mirroring a season-spanning
        phenomenon.
        """
        return {month: self.generate(month) for month in range(1, 13)}

    # -- geometry and climate ----------------------------------------------------

    def _grid(self) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
        """Flattened land-grid coordinates (lat in [-55, 70])."""
        lats = np.arange(-55.0, 70.0 + 1e-9, self._lat_step)
        lons = np.arange(-180.0, 180.0 - 1e-9, self._lon_step)
        grid_lat, grid_lon = np.meshgrid(lats, lons, indexing="ij")
        return (
            grid_lat.ravel(), grid_lon.ravel(),
            (lats.size, lons.size),
        )

    def _nodes_in_box(self, latitudes, longitudes, box) -> np.ndarray:
        lat_min, lat_max, lon_min, lon_max = box
        inside = (
            (latitudes >= lat_min) & (latitudes <= lat_max)
            & (longitudes >= lon_min) & (longitudes <= lon_max)
        )
        return np.flatnonzero(inside)

    def _climate_classes(self, latitudes, longitudes, month,
                         region_nodes) -> np.ndarray:
        """Integer climate class per cell, named regions forced."""
        abs_lat = np.abs(latitudes)
        smooth = (
            6.0 * np.exp(-(abs_lat / 12.0) ** 2)
            + 2.5 * np.exp(-((abs_lat - 50.0) / 15.0) ** 2)
            + 0.8
        )
        phase = np.where(latitudes < 0, 0.0, np.pi)
        seasonal = 1.0 + 0.35 * np.cos(
            2.0 * np.pi * (month - 1) / 12.0 + phase
        )
        smooth = smooth * seasonal
        # Longitude texture so classes recur in patches, not rings.
        smooth = smooth * (
            1.0 + 0.25 * np.sin(np.radians(longitudes) * 3.0)
        )
        edges = np.quantile(
            smooth, np.linspace(0.0, 1.0, self._num_classes + 1)[1:-1]
        )
        classes = np.digitize(smooth, edges).astype(np.float64)
        for name, class_id in REGION_CLASSES.items():
            classes[region_nodes[name]] = float(class_id)
        return classes

    def _block_ids(self, shape, region_nodes, n) -> np.ndarray:
        """Grid-block id per cell; each named region is its own block."""
        rows, cols = np.divmod(np.arange(n), shape[1])
        block_rows = rows // self._block_cells
        block_cols = cols // self._block_cells
        blocks = (
            block_rows * (shape[1] // self._block_cells + 1) + block_cols
        )
        _unique, blocks = np.unique(blocks, return_inverse=True)
        next_id = int(blocks.max()) + 1
        for name in REGIONS:
            blocks[region_nodes[name]] = next_id
            next_id += 1
        return blocks
