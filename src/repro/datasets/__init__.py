"""Dataset simulators: every workload of the paper's Section 4."""

from .dblp import (
    CollaborationEvent,
    DblpLikeData,
    DblpLikeSimulator,
    generate_dblp_instance,
)
from .enron import (
    EnronLikeData,
    EnronLikeSimulator,
    ScriptedEvent,
    month_labels,
)
from .gaussian_mixture import (
    DEFAULT_MEANS,
    GaussianMixtureInstance,
    generate_gaussian_mixture_instance,
)
from .precipitation import (
    EVENT_SHIFTS,
    REGIONS,
    PrecipitationData,
    PrecipitationSimulator,
)
from .random_graphs import ScalabilityInstance, generate_scalability_instance
from .toy import (
    ANOMALOUS_SCENARIOS,
    BENIGN_SCENARIOS,
    BLUE,
    RED,
    SCENARIOS,
    ToyExample,
    toy_example,
)

__all__ = [
    "ANOMALOUS_SCENARIOS",
    "BENIGN_SCENARIOS",
    "BLUE",
    "CollaborationEvent",
    "DEFAULT_MEANS",
    "DblpLikeData",
    "DblpLikeSimulator",
    "EVENT_SHIFTS",
    "EnronLikeData",
    "EnronLikeSimulator",
    "GaussianMixtureInstance",
    "PrecipitationData",
    "PrecipitationSimulator",
    "REGIONS",
    "RED",
    "SCENARIOS",
    "ScalabilityInstance",
    "ScriptedEvent",
    "ToyExample",
    "generate_dblp_instance",
    "generate_gaussian_mixture_instance",
    "generate_scalability_instance",
    "month_labels",
    "toy_example",
]
