"""The Section 4.1 synthetic benchmark: Gaussian-mixture graphs.

Construction (following the paper):

1. draw ``n`` points from a 2-D Gaussian mixture with 4 components;
2. build the dense similarity graph ``P(i, j) = exp(-d(i, j))``
   (strong intra-cluster, weak inter-cluster weights);
3. perturb the points slightly and rebuild to get ``Q`` (benign
   temporal drift);
4. add sparse symmetric uniform noise entries;
5. the two-snapshot sequence is ``A_1 = P``, ``A_2 = Q + noise``.

Ground truth (paper): noise edges whose endpoints lie in *different*
mixture components — they create ties between distant clusters, the
anomalous structural change (Case 2) — plus the nodes incident to
them. Noise edges *within* a component hit tightly coupled pairs and
are structurally benign (the paper's non-anomalous Case 1-lookalikes).

Reproduction note (also recorded in DESIGN.md / EXPERIMENTS.md): the
paper draws noise uniformly over all n^2 entries at density 0.05,
under which essentially every node receives a cross-cluster noise
edge and node-level ROC is degenerate (all nodes positive). To obtain
a well-posed ROC that still exercises exactly the paper's
discrimination problem, this generator exposes *separate* densities
for intra-cluster (benign) and cross-cluster (anomalous) noise: both
share one uniform magnitude distribution, so adjacency change alone
(the ADJ baseline) cannot distinguish them, and only the minority of
cross-cluster entries is ground truth. Defaults are calibrated to
reproduce the paper's reported AUC ordering (CAD ~ 0.88, baselines
~ 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import as_rng, check_positive_int, check_probability
from ..exceptions import DatasetError
from ..graphs.builders import gaussian_similarity_graph
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot, NodeUniverse

#: Component means of the 2-D mixture at the reference scale (n ~ 250).
#: Prefer :func:`default_means`, which scales the separation with n.
DEFAULT_MEANS = np.array([
    [0.0, 0.0],
    [8.0, 0.0],
    [0.0, 8.0],
    [8.0, 8.0],
])


def default_means(n: int) -> np.ndarray:
    """Component means whose separation keeps the benchmark scale-free.

    A single cross-cluster edge is structurally significant only while
    the *aggregate* inter-cluster similarity mass stays O(1): two
    clusters of ``n/4`` points at separation ``d`` share roughly
    ``(n/4)^2 * exp(-d)`` of background similarity, so the separation
    must grow like ``2 ln(n/4)`` for the paper's Case 2 regime to
    survive at larger n (at n = 2000 the paper's own scale, a fixed
    separation drowns every injected edge in background mass).
    """
    separation = max(6.0, 2.0 * np.log(max(n, 8) / 4.0))
    return np.array([
        [0.0, 0.0],
        [separation, 0.0],
        [0.0, separation],
        [separation, separation],
    ])


@dataclass(frozen=True)
class GaussianMixtureInstance:
    """One realisation of the synthetic benchmark with ground truth.

    Attributes:
        graph: two-snapshot dynamic graph ``[P, Q + noise]``.
        points: the ``(n, 2)`` mixture sample.
        components: per-node mixture component ids.
        anomalous_edge_rows / anomalous_edge_cols: endpoints (row <
            col) of the injected cross-cluster noise edges.
        benign_edge_rows / benign_edge_cols: endpoints of the injected
            intra-cluster (benign) noise edges.
        node_labels: boolean length-n array, True for nodes incident
            to at least one cross-cluster noise edge.
    """

    graph: DynamicGraph
    points: np.ndarray
    components: np.ndarray
    anomalous_edge_rows: np.ndarray
    anomalous_edge_cols: np.ndarray
    benign_edge_rows: np.ndarray
    benign_edge_cols: np.ndarray
    node_labels: np.ndarray

    @property
    def num_anomalous_nodes(self) -> int:
        """Number of ground-truth anomalous nodes."""
        return int(self.node_labels.sum())


def generate_gaussian_mixture_instance(
    n: int = 500,
    means: np.ndarray | None = None,
    component_std: float = 0.7,
    perturbation_std: float = 0.05,
    intra_noise_per_node: float = 3.0,
    cross_noise_edges: int = 20,
    noise_low: float = 0.3,
    noise_high: float = 1.0,
    seed=None,
) -> GaussianMixtureInstance:
    """Generate one benchmark realisation.

    Args:
        n: number of sample points / graph nodes (paper: 2000).
        means: ``(k, 2)`` component means (defaults to 4 separated
            corners).
        component_std: isotropic standard deviation of each component.
        perturbation_std: std of the benign point jitter producing Q.
        intra_noise_per_node: expected number of benign intra-cluster
            noise edges incident to each node.
        cross_noise_edges: number of anomalous cross-cluster noise
            edges injected (the ground-truth positives).
        noise_low / noise_high: uniform weight range shared by both
            noise kinds (identical magnitudes by design, so magnitude
            alone carries no label information).
        seed: int seed or numpy Generator.

    Returns:
        A fully labelled :class:`GaussianMixtureInstance`.
    """
    n = check_positive_int(n, "n")
    if means is None:
        means = default_means(n)
    means = np.asarray(means, dtype=np.float64)
    if means.ndim != 2 or means.shape[1] != 2:
        raise DatasetError(f"means must be (k, 2), got {means.shape}")
    num_components = means.shape[0]
    if n < 2 * num_components:
        raise DatasetError(
            f"need at least {2 * num_components} samples, got {n}"
        )
    if not 0 <= noise_low < noise_high:
        raise DatasetError(
            f"need 0 <= noise_low < noise_high, got "
            f"({noise_low}, {noise_high})"
        )
    cross_noise_edges = check_positive_int(
        cross_noise_edges, "cross_noise_edges"
    )
    rng = as_rng(seed)

    components = rng.integers(0, num_components, size=n)
    points = means[components] + component_std * rng.standard_normal((n, 2))
    universe = NodeUniverse.of_size(n)

    first = gaussian_similarity_graph(points, universe, time=1)
    perturbed = points + perturbation_std * rng.standard_normal((n, 2))
    drifted = gaussian_similarity_graph(perturbed, universe)

    intra_rows, intra_cols = _sample_pairs(
        components, same_component=True,
        count=int(round(intra_noise_per_node * n / 2.0)), rng=rng,
    )
    cross_rows, cross_cols = _sample_pairs(
        components, same_component=False,
        count=cross_noise_edges, rng=rng,
    )
    noise = np.zeros((n, n))
    for rows, cols in ((intra_rows, intra_cols), (cross_rows, cross_cols)):
        values = rng.uniform(noise_low, noise_high, size=rows.size)
        noise[rows, cols] += values
        noise[cols, rows] += values
    second = GraphSnapshot(
        drifted.adjacency.toarray() + noise, universe, time=2
    )

    node_labels = np.zeros(n, dtype=bool)
    node_labels[cross_rows] = True
    node_labels[cross_cols] = True

    return GaussianMixtureInstance(
        graph=DynamicGraph([first, second]),
        points=points,
        components=components,
        anomalous_edge_rows=cross_rows,
        anomalous_edge_cols=cross_cols,
        benign_edge_rows=intra_rows,
        benign_edge_cols=intra_cols,
        node_labels=node_labels,
    )


def _sample_pairs(components: np.ndarray,
                  same_component: bool,
                  count: int,
                  rng: np.random.Generator,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` distinct node pairs (row < col) by cluster rule.

    Rejection sampling against the same/different-component predicate;
    duplicates are removed (so the realised count can fall slightly
    short at extreme densities, which is harmless for the benchmark).
    """
    n = components.size
    if count <= 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    chosen: set[tuple[int, int]] = set()
    budget = 50 * count + 100
    while len(chosen) < count and budget > 0:
        size = max(count - len(chosen), 16)
        rows = rng.integers(0, n, size=2 * size)
        cols = rng.integers(0, n, size=2 * size)
        budget -= 2 * size
        keep = rows != cols
        same = components[rows] == components[cols]
        keep &= same if same_component else ~same
        for i, j in zip(rows[keep], cols[keep]):
            pair = (int(min(i, j)), int(max(i, j)))
            chosen.add(pair)
            if len(chosen) >= count:
                break
    if not chosen:
        raise DatasetError(
            "could not sample any node pairs with the requested "
            "component rule — are all points in one component?"
        )
    rows = np.array([pair[0] for pair in sorted(chosen)], dtype=np.int64)
    cols = np.array([pair[1] for pair in sorted(chosen)], dtype=np.int64)
    return rows, cols
