"""The paper's 17-node illustrative example (Section 2.2, Figure 1).

Two loosely connected communities — blue ``b1..b8`` and red
``r1..r9`` — with five scripted weight changes between time slices
``t`` and ``t+1``:

* **S1** (Case 2): new edge ``b1–r1`` connecting the two communities
  through previously distant nodes;
* **S2** (Case 3): decrease on the bridge ``r7–r8`` whose weakening
  splits ``{r4, r6, r8, r9}`` away from the rest of the red community;
* **S3** (Case 1): large increase on ``b4–b5``;
* **S4** (benign): small decrease on ``b1–b3`` (tightly coupled pair);
* **S5** (benign): small increase on ``b2–b7`` (tightly coupled pair).

The paper does not publish the underlying weights, so the exact Table
1/2 values cannot be matched; the graph here is constructed so that
the *qualitative* structure (community layout, bridge role of
``r7–r8``, tight coupling of the benign pairs) matches Figure 1 and
the score ordering/separation of Tables 1–2 is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.builders import snapshot_from_edges
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import NodeLabel, NodeUniverse

BLUE = tuple(f"b{i}" for i in range(1, 9))
RED = tuple(f"r{i}" for i in range(1, 10))

#: Baseline (time t) weighted edges.
_EDGES_T: list[tuple[str, str, float]] = [
    # blue community: a well-knit cluster
    ("b1", "b2", 2.0), ("b1", "b3", 2.0), ("b2", "b3", 2.0),
    ("b2", "b7", 2.0), ("b3", "b4", 2.0), ("b4", "b5", 1.0),
    ("b4", "b6", 2.0), ("b5", "b6", 2.0), ("b5", "b7", 2.0),
    ("b6", "b8", 2.0), ("b7", "b8", 2.0), ("b1", "b5", 2.0),
    ("b2", "b6", 2.0), ("b3", "b7", 2.0),
    # red community, core blob {r1, r2, r3, r5, r7}
    ("r1", "r2", 2.0), ("r1", "r3", 2.0), ("r2", "r3", 2.0),
    ("r2", "r5", 2.0), ("r3", "r5", 2.0), ("r5", "r7", 2.0),
    ("r1", "r7", 2.0), ("r3", "r7", 2.0),
    # red community, satellite blob {r4, r6, r8, r9}
    ("r4", "r6", 2.0), ("r4", "r8", 2.0), ("r6", "r8", 2.0),
    ("r8", "r9", 2.0), ("r4", "r9", 2.0), ("r6", "r9", 2.0),
    # the bridge tying the satellite blob to the red core
    ("r7", "r8", 2.0),
    # weak blue-red contacts keeping the graph connected
    ("b8", "r2", 0.4), ("b6", "r3", 0.4),
]

#: The five scripted scenarios: edge -> (weight at t, weight at t+1).
SCENARIOS: dict[str, tuple[str, str, float, float]] = {
    "S1": ("b1", "r1", 0.0, 1.0),   # new inter-community edge (Case 2)
    "S2": ("r7", "r8", 2.0, 0.7),   # bridge weakening (Case 3)
    "S3": ("b4", "b5", 1.0, 4.0),   # large magnitude change (Case 1)
    "S4": ("b1", "b3", 2.0, 1.7),   # benign wiggle, tight coupling
    "S5": ("b2", "b7", 2.0, 2.3),   # benign wiggle, tight coupling
}

ANOMALOUS_SCENARIOS = ("S1", "S2", "S3")
BENIGN_SCENARIOS = ("S4", "S5")


@dataclass(frozen=True)
class ToyExample:
    """The toy dataset plus its ground truth.

    Attributes:
        graph: two-snapshot dynamic graph (times ``"t"``, ``"t+1"``).
        anomalous_edges: the S1/S2/S3 edges as label pairs.
        benign_edges: the S4/S5 edges as label pairs.
        anomalous_nodes: endpoints of the anomalous edges — the paper's
            expected detection set {b1, r1, r7, r8, b4, b5}.
        scenarios: scenario id -> (u, v, weight_t, weight_t1).
    """

    graph: DynamicGraph
    anomalous_edges: tuple[tuple[NodeLabel, NodeLabel], ...]
    benign_edges: tuple[tuple[NodeLabel, NodeLabel], ...]
    anomalous_nodes: tuple[NodeLabel, ...]
    scenarios: dict[str, tuple[str, str, float, float]]


def toy_example() -> ToyExample:
    """Build the Section 2.2 toy example with ground truth attached."""
    universe = NodeUniverse(BLUE + RED)

    edges_t = list(_EDGES_T)
    edges_t1 = []
    changed = {(u, v): (before, after)
               for u, v, before, after in SCENARIOS.values()}
    for u, v, weight in edges_t:
        key = (u, v) if (u, v) in changed else (v, u)
        if key in changed:
            edges_t1.append((u, v, changed[key][1]))
        else:
            edges_t1.append((u, v, weight))
    # S1 adds a brand-new edge absent at time t.
    u, v, before, after = SCENARIOS["S1"]
    assert before == 0.0
    edges_t1.append((u, v, after))

    graph = DynamicGraph([
        snapshot_from_edges(edges_t, universe, time="t"),
        snapshot_from_edges(edges_t1, universe, time="t+1"),
    ])
    anomalous = tuple(
        (SCENARIOS[s][0], SCENARIOS[s][1]) for s in ANOMALOUS_SCENARIOS
    )
    benign = tuple(
        (SCENARIOS[s][0], SCENARIOS[s][1]) for s in BENIGN_SCENARIOS
    )
    nodes = tuple(sorted({node for edge in anomalous for node in edge}))
    return ToyExample(
        graph=graph,
        anomalous_edges=anomalous,
        benign_edges=benign,
        anomalous_nodes=nodes,
        scenarios=dict(SCENARIOS),
    )
