"""DBLP-like co-authorship network simulator (Section 4.2.2).

The paper runs CAD on the yearly DBLP co-authorship graph (6,574
authors, 2005–2010; edge weight = papers co-authored that year) and
reports three anecdotes, which this simulator turns into ground truth
event archetypes:

* **cross-field switch** (the "Atanas Rountev → high-performance
  computing" anecdote): an author abruptly starts publishing heavily
  with several authors of a *distant* research field. CAD's strongest
  expected signal.
* **sub-field switch** (the "Salvatore Orlando → core databases"
  anecdote): an author moves to a *nearby* sub-field — the same
  archetype at lower structural severity, so its CAD score must come
  out *below* the cross-field switch (the paper calls this ordering
  out explicitly).
* **severed tie** (the "Brdiczka / Mühlhäuser" anecdote): a strong
  multi-year collaboration ends when one author departs for another
  community.

Collaboration model: each author holds a *persistent* set of regular
collaborators inside their sub-field (pairwise Poisson paper rates
that stay fixed across years — regular co-authors publish together
consistently), plus a small number of one-off papers per year within
the field. Fields are communities; sub-fields are halves of a field
bridged by a sparse set of cross-sub-field regular pairs, so a
sub-field hop crosses a smaller structural gap than a field hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import as_rng, check_positive_int
from ..exceptions import DatasetError
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot, NodeUniverse


@dataclass(frozen=True)
class CollaborationEvent:
    """One injected collaboration-shift event.

    Attributes:
        name: archetype id (``cross_field_switch`` /
            ``sub_field_switch`` / ``severed_tie``).
        author: the moving author's label.
        partners: labels of the new (or, for severed ties, first the
            lost then the new) collaborators.
        transition: 0-based transition index at which the shift
            happens.
        expected_severity_rank: 1 = the event CAD should score highest
            among same-transition injected events.
    """

    name: str
    author: str
    partners: tuple[str, ...]
    transition: int
    expected_severity_rank: int


@dataclass(frozen=True)
class DblpLikeData:
    """The simulated co-authorship sequence plus ground truth.

    Attributes:
        graph: yearly dynamic graph (time labels are years).
        events: the injected collaboration events.
        fields: author label -> field id.
    """

    graph: DynamicGraph
    events: tuple[CollaborationEvent, ...]
    fields: dict[str, int]


class DblpLikeSimulator:
    """Simulates a community-structured yearly co-authorship network.

    Args:
        num_authors: roster size (paper: 6,574; default kept smaller
            so the exact commute backend stays fast).
        num_fields: number of research fields (communities).
        years: inclusive year range of the snapshots.
        regular_partners: average number of persistent collaborators
            per author.
        seed: int seed or numpy Generator.
    """

    def __init__(self, num_authors: int = 600,
                 num_fields: int = 6,
                 years: tuple[int, int] = (2005, 2010),
                 regular_partners: float = 4.0,
                 seed=None):
        self._n = check_positive_int(num_authors, "num_authors")
        self._num_fields = check_positive_int(num_fields, "num_fields")
        if self._n < 20 * self._num_fields:
            raise DatasetError(
                f"need >= {20 * self._num_fields} authors for "
                f"{self._num_fields} fields, got {self._n}"
            )
        if years[1] <= years[0]:
            raise DatasetError(f"invalid year range {years}")
        self._years = list(range(years[0], years[1] + 1))
        self._regular_partners = regular_partners
        self._rng = as_rng(seed)

    def generate(self) -> DblpLikeData:
        """Simulate the sequence and return it with ground truth."""
        rng = self._rng
        labels = [f"author_{i:04d}" for i in range(self._n)]
        universe = NodeUniverse(labels)
        fields = rng.integers(0, self._num_fields, size=self._n)
        subfields = rng.integers(0, 2, size=self._n)
        field_map = {labels[i]: int(fields[i]) for i in range(self._n)}

        pair_rates = self._regular_pair_rates(fields, subfields)
        events = self._script_events(labels, fields, subfields)
        event_rate_changes = self._event_rate_changes(events, universe)

        snapshots = []
        for year_index, year in enumerate(self._years):
            rates = pair_rates.copy()
            for (i, j), (start, rate) in event_rate_changes.items():
                active = (
                    year_index > start if rate > 0 else year_index <= start
                )
                if active:
                    rates[i, j] = rates[j, i] = abs(rate)
            adjacency = self._sample_counts(rates, rng)
            adjacency += self._one_off_papers(fields, rng)
            snapshots.append(GraphSnapshot(adjacency, universe, time=year))
        return DblpLikeData(
            graph=DynamicGraph(snapshots),
            events=tuple(events),
            fields=field_map,
        )

    # -- baseline collaboration ------------------------------------------------

    def _regular_pair_rates(self, fields: np.ndarray,
                            subfields: np.ndarray) -> np.ndarray:
        """Persistent pairwise paper rates (symmetric dense matrix)."""
        rng = self._rng
        n = self._n
        rates = np.zeros((n, n))
        for author in range(n):
            same_sub = (
                (fields == fields[author])
                & (subfields == subfields[author])
            )
            same_sub[author] = False
            pool = np.flatnonzero(same_sub)
            if pool.size == 0:
                continue
            count = min(pool.size, rng.poisson(self._regular_partners))
            if count == 0:
                continue
            partners = rng.choice(pool, size=count, replace=False)
            for partner in partners:
                if rates[author, partner] == 0.0:
                    rate = rng.lognormal(mean=0.3, sigma=0.4)
                    rates[author, partner] = rate
                    rates[partner, author] = rate
        # Sparse bridges between sub-fields of the same field.
        for f in range(self._num_fields):
            left = np.flatnonzero((fields == f) & (subfields == 0))
            right = np.flatnonzero((fields == f) & (subfields == 1))
            bridges = max(2, (left.size + right.size) // 20)
            for _ in range(bridges):
                if left.size == 0 or right.size == 0:
                    break
                i = int(rng.choice(left))
                j = int(rng.choice(right))
                rate = rng.lognormal(mean=0.0, sigma=0.3)
                rates[i, j] = rates[j, i] = rate
        return rates

    def _sample_counts(self, rates: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Yearly paper counts: symmetric Poisson draw of the rates."""
        upper = np.triu(rng.poisson(rates), k=1).astype(np.float64)
        return upper + upper.T

    def _one_off_papers(self, fields: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        """A sprinkle of single-paper pairs inside each field."""
        n = self._n
        extra = np.zeros((n, n))
        num_pairs = rng.poisson(n / 10.0)
        for _ in range(num_pairs):
            field = int(rng.integers(0, self._num_fields))
            pool = np.flatnonzero(fields == field)
            if pool.size < 2:
                continue
            i, j = rng.choice(pool, size=2, replace=False)
            extra[i, j] += 1.0
            extra[j, i] += 1.0
        return extra

    # -- events -----------------------------------------------------------------

    def _script_events(self, labels, fields, subfields,
                       ) -> list[CollaborationEvent]:
        """Pick actors and partners for the three archetypes."""
        rng = self._rng

        def pick_from(mask: np.ndarray, count: int) -> np.ndarray:
            pool = np.flatnonzero(mask)
            return rng.choice(pool, size=count, replace=False)

        # Cross-field switch: author from field 0 -> partners in field 1.
        mover = int(pick_from(fields == 0, 1)[0])
        far_partners = pick_from(fields == 1, 5)
        cross = CollaborationEvent(
            name="cross_field_switch",
            author=labels[mover],
            partners=tuple(labels[int(p)] for p in far_partners),
            transition=0,  # the 2005 -> 2006 transition, as in the paper
            expected_severity_rank=1,
        )

        # Sub-field switch: author from field 2 / sub 0 -> partners in
        # field 2 / sub 1 (nearby community, smaller structural hop).
        sub_mover = int(pick_from((fields == 2) & (subfields == 0), 1)[0])
        near_partners = pick_from((fields == 2) & (subfields == 1), 3)
        sub = CollaborationEvent(
            name="sub_field_switch",
            author=labels[sub_mover],
            partners=tuple(labels[int(p)] for p in near_partners),
            transition=0,
            expected_severity_rank=2,
        )

        # Severed tie: two field-3 authors with a strong standing
        # collaboration; it ends at the 2008 -> 2009 transition and the
        # mover starts publishing in field 4.
        pair = pick_from(fields == 3, 2)
        new_home = pick_from(fields == 4, 3)
        severed = CollaborationEvent(
            name="severed_tie",
            author=labels[int(pair[0])],
            partners=(labels[int(pair[1])],)
            + tuple(labels[int(p)] for p in new_home),
            transition=3,
            expected_severity_rank=1,
        )
        return [cross, sub, severed]

    def _event_rate_changes(self, events, universe,
                            ) -> dict[tuple[int, int], tuple[int, float]]:
        """Per-pair rate overrides: (i, j) -> (transition, signed rate).

        Positive rates switch *on* after the transition; negative rates
        encode ties that exist *up to* the transition and vanish after
        (the severed-tie archetype).
        """
        changes: dict[tuple[int, int], tuple[int, float]] = {}
        for event in events:
            author = universe.index_of(event.author)
            if event.name == "cross_field_switch":
                for partner in event.partners:
                    j = universe.index_of(partner)
                    changes[(author, j)] = (event.transition, 6.0)
            elif event.name == "sub_field_switch":
                for partner in event.partners:
                    j = universe.index_of(partner)
                    changes[(author, j)] = (event.transition, 4.0)
            elif event.name == "severed_tie":
                lost = universe.index_of(event.partners[0])
                changes[(author, lost)] = (event.transition, -7.0)
                for partner in event.partners[1:]:
                    j = universe.index_of(partner)
                    changes[(author, j)] = (event.transition, 4.0)
        return changes


def generate_dblp_instance(seed=None, **kwargs) -> DblpLikeData:
    """Build a default DBLP-like instance (thin convenience wrapper)."""
    return DblpLikeSimulator(seed=seed, **kwargs).generate()
