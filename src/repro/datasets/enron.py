"""Enron-like organizational email network simulator (Section 4.2.1).

The paper's Enron experiment uses 151 employees over 48 monthly
snapshots (Dec 1998 – Nov 2002), with edge weights counting emails
exchanged. That data is unavailable offline, so this module simulates
an organizational email network with the same shape and — crucially —
scripted events mirroring the anecdotes the paper verifies against:

* a **trader burst** during the calm period (the "Chris Germany"
  anecdote): one trader suddenly contacts many other traders;
* an **incoming-CEO arrival** (the "Jeff Skilling" hire, Feb 2001);
* an **executive-assistant anomaly** just before the CEO change (the
  "Rosalie Fleming" anecdote, Dec 2000);
* the **key-player hub formation** (the "Kenneth Lay" anecdote,
  Jul→Aug 2001): the primary CEO abruptly starts emailing dozens of
  employees across all job roles — the event CAD must localize;
* a simultaneous **volume-only burst** (the "James Steffes" anecdote):
  a VP multiplies email volume to his *existing* contacts without new
  relationships — the event ACT top-ranks but CAD should not;
* an **acquisition working group** (the "David Delainey" / Dynegy
  anecdote, Oct→Nov 2001);
* **bankruptcy churn** (Nov 2001 – Feb 2002): legal specialists,
  presidents/VPs and traders forming and dropping ties.

Every event carries ground truth (actors, months, and whether the
change is *relational* — new/removed ties — or volume-only), so the
Figure 7/8 benchmarks can check CAD against a known timeline instead
of anecdote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import DatasetError
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot, NodeUniverse

#: Month labels for the paper's Dec 1998 – Nov 2002 span.
def month_labels(start_year: int = 1998, start_month: int = 12,
                 count: int = 48) -> list[str]:
    """Generate ``count`` consecutive ``YYYY-MM`` labels."""
    labels = []
    year, month = start_year, start_month
    for _ in range(count):
        labels.append(f"{year:04d}-{month:02d}")
        month += 1
        if month > 12:
            month = 1
            year += 1
    return labels


@dataclass(frozen=True)
class ScriptedEvent:
    """One scripted organizational event with ground truth.

    Attributes:
        name: short event id.
        months: month indices (0-based) during which the event's extra
            communication is active.
        actors: node labels whose *relationships* the event changes.
        relational: True when the event creates/removes ties (CAD's
            target); False for pure volume changes on existing ties.
        description: one-line narrative.
    """

    name: str
    months: tuple[int, ...]
    actors: tuple[str, ...]
    relational: bool
    description: str

    def boundary_transitions(self) -> tuple[int, ...]:
        """Transitions where this event's edges appear or disappear.

        A transition index ``t`` covers the boundary between months
        ``t`` and ``t+1``. The event changes relationships at its
        start (month ``first``: transition ``first - 1``) and at its
        end (last active month ``last``: transition ``last``).
        """
        first, last = min(self.months), max(self.months)
        boundaries = []
        if first > 0:
            boundaries.append(first - 1)
        boundaries.append(last)
        return tuple(sorted(set(boundaries)))


@dataclass(frozen=True)
class EnronLikeData:
    """The simulated network plus its ground truth.

    Attributes:
        graph: 48-snapshot dynamic graph (time labels ``YYYY-MM``).
        events: scripted events in chronological order.
        roles: node label -> job role string.
        key_player: the hub-forming CEO node (Kenneth Lay analogue).
        volume_player: the volume-only VP node (James Steffes
            analogue).
        calm_transitions / turmoil_transitions: transition index
            ranges for the paper's calm and scandal phases.
    """

    graph: DynamicGraph
    events: tuple[ScriptedEvent, ...]
    roles: dict[str, str]
    key_player: str
    volume_player: str
    calm_transitions: tuple[int, ...]
    turmoil_transitions: tuple[int, ...]

    def relational_events(self) -> tuple[ScriptedEvent, ...]:
        """Events that change relationships (CAD ground truth)."""
        return tuple(e for e in self.events if e.relational)

    def ground_truth_transitions(self) -> set[int]:
        """Transitions at which some relational event starts or ends."""
        truth: set[int] = set()
        for event in self.relational_events():
            truth.update(event.boundary_transitions())
        return truth

    def active_event_transitions(self) -> set[int]:
        """Transitions overlapping any relational event's active span.

        Wider than :meth:`ground_truth_transitions`: sampling noise can
        legitimately surface relationship changes at mid-event
        transitions too (the paper's Figure 7 likewise shows runs of
        consecutive flagged transitions during the scandal).
        """
        active: set[int] = set()
        for event in self.relational_events():
            first, last = min(event.months), max(event.months)
            for transition in range(max(first - 1, 0), last + 1):
                active.add(transition)
        return active

    def ground_truth_actors(self, transition: int) -> set[str]:
        """Actors of relational events touching the given transition."""
        actors: set[str] = set()
        for event in self.relational_events():
            if transition in event.boundary_transitions():
                actors.update(event.actors)
        return actors


# -- role layout --------------------------------------------------------------

_ROLE_COUNTS = (
    ("president", 3),
    ("vice_president", 9),
    ("legal", 12),
    ("trader", 40),
    ("manager", 20),
    ("staff", 62),
)

KEY_PLAYER = "ceo_primary"
INCOMING_CEO = "ceo_incoming"
ASSISTANT = "assistant_exec"
VOLUME_PLAYER = "vp_government"
ENERGY_CEO = "ceo_energy"

_NAMED = (KEY_PLAYER, INCOMING_CEO, ASSISTANT, VOLUME_PLAYER, ENERGY_CEO)
_NAMED_ROLES = {
    KEY_PLAYER: "ceo",
    INCOMING_CEO: "ceo",
    ASSISTANT: "assistant",
    VOLUME_PLAYER: "vice_president",
    ENERGY_CEO: "ceo",
}


def _build_roster(num_employees: int) -> tuple[list[str], dict[str, str]]:
    """Node labels and their roles for a roster of the given size."""
    labels: list[str] = list(_NAMED)
    roles: dict[str, str] = dict(_NAMED_ROLES)
    for role, count in _ROLE_COUNTS:
        for index in range(1, count + 1):
            label = f"{role}_{index:02d}"
            labels.append(label)
            roles[label] = role
    if len(labels) > num_employees:
        # Trim from the tail (staff first) while keeping named actors.
        labels = labels[:num_employees]
        roles = {label: roles[label] for label in labels}
    while len(labels) < num_employees:
        label = f"staff_{len(labels):03d}"
        labels.append(label)
        roles[label] = "staff"
    return labels, roles


class EnronLikeSimulator:
    """Simulates the organizational email network described above.

    Args:
        num_employees: roster size (paper: 151).
        num_months: number of monthly snapshots (paper: 48).
        seed: int seed or numpy Generator.
        base_intra: baseline Poisson email rate within a department.
        base_inter: baseline rate across departments.
    """

    def __init__(self, num_employees: int = 151,
                 num_months: int = 48,
                 seed=None,
                 base_intra: float = 2.0,
                 base_inter: float = 0.02):
        self._n = check_positive_int(num_employees, "num_employees")
        if self._n < 120:
            raise DatasetError(
                "the scripted events need a roster of at least 120 "
                f"employees, got {self._n}"
            )
        self._num_months = check_positive_int(num_months, "num_months")
        if self._num_months < 40:
            raise DatasetError(
                "the scripted timeline needs at least 40 months, got "
                f"{self._num_months}"
            )
        self._rng = as_rng(seed)
        self._base_intra = base_intra
        self._base_inter = base_inter

    def generate(self) -> EnronLikeData:
        """Simulate the full sequence and return it with ground truth."""
        labels, roles = _build_roster(self._n)
        universe = NodeUniverse(labels)
        index = {label: i for i, label in enumerate(labels)}
        departments = self._assign_departments(labels, roles)
        base_rates = self._baseline_rates(labels, roles, departments)
        events = self._script_events(labels, roles)

        months = month_labels(count=self._num_months)
        snapshots = []
        for month in range(self._num_months):
            rates = base_rates.copy()
            self._apply_events(rates, events, month, index)
            seasonal = 1.0 + 0.1 * np.sin(2.0 * np.pi * month / 12.0)
            adjacency = self._sample_poisson(rates * seasonal)
            snapshots.append(
                GraphSnapshot(adjacency, universe, time=months[month])
            )
        graph = DynamicGraph(snapshots)

        turmoil = tuple(range(25, min(40, self._num_months - 1)))
        calm = tuple(
            t for t in range(self._num_months - 1) if t not in turmoil
        )
        return EnronLikeData(
            graph=graph,
            events=tuple(events),
            roles=roles,
            key_player=KEY_PLAYER,
            volume_player=VOLUME_PLAYER,
            calm_transitions=calm,
            turmoil_transitions=turmoil,
        )

    # -- structure ------------------------------------------------------------

    def _assign_departments(self, labels: list[str],
                            roles: dict[str, str]) -> np.ndarray:
        """Department ids: executives together, traders on two desks,
        legal its own; managers and staff spread across line depts."""
        departments = np.zeros(len(labels), dtype=np.int64)
        line_departments = (3, 4, 5, 6, 7)
        trader_count = 0
        spread = 0
        for i, label in enumerate(labels):
            role = roles[label]
            if role in ("ceo", "assistant", "president", "vice_president"):
                departments[i] = 0
            elif role == "legal":
                departments[i] = 1
            elif role == "trader":
                departments[i] = 2 if trader_count % 2 == 0 else 8
                trader_count += 1
            else:
                departments[i] = line_departments[
                    spread % len(line_departments)
                ]
                spread += 1
        return departments

    def _baseline_rates(self, labels: list[str],
                        roles: dict[str, str],
                        departments: np.ndarray) -> np.ndarray:
        """Symmetric baseline Poisson rate matrix with hierarchy."""
        n = len(labels)
        same = departments[:, None] == departments[None, :]
        rates = np.where(same, self._base_intra, self._base_inter)

        is_exec = np.array([
            roles[label] in ("ceo", "president", "vice_president")
            for label in labels
        ])
        is_manager = np.array(
            [roles[label] == "manager" for label in labels]
        )
        # Executives coordinate with managers across departments.
        exec_manager = np.outer(is_exec, is_manager)
        rates = np.where(exec_manager | exec_manager.T, 0.6, rates)
        # The assistant talks mostly to the primary CEO's office.
        assistant = labels.index(ASSISTANT)
        rates[assistant, :] *= 0.2
        rates[:, assistant] *= 0.2
        for exec_label in (KEY_PLAYER, INCOMING_CEO):
            j = labels.index(exec_label)
            rates[assistant, j] = rates[j, assistant] = 4.0

        # Fixed per-pair affinity so relationships persist over time.
        # The tail is clipped: without the cap, a handful of extreme
        # pairs flicker by several emails per month and their benign
        # variance drowns the scripted events (real interaction data is
        # closer to the capped regime because heavy pairs are stable).
        affinity = self._rng.lognormal(mean=-0.5, sigma=0.5, size=(n, n))
        affinity = np.clip(affinity, 0.0, 2.0)
        affinity = np.triu(affinity, k=1)
        affinity = affinity + affinity.T
        rates = rates * affinity
        np.fill_diagonal(rates, 0.0)
        return rates

    # -- events ---------------------------------------------------------------

    def _script_events(self, labels: list[str],
                       roles: dict[str, str]) -> list[ScriptedEvent]:
        """The scripted timeline (months are 0-based from Dec 1998)."""
        rng = self._rng
        by_role: dict[str, list[str]] = {}
        for label in labels:
            by_role.setdefault(roles[label], []).append(label)

        def pick(role: str, count: int, exclude: tuple[str, ...] = ()):
            pool = [who for who in by_role.get(role, [])
                    if who not in exclude]
            count = min(count, len(pool))
            return tuple(rng.choice(pool, size=count, replace=False))

        trader_star = by_role["trader"][0]
        events = [
            ScriptedEvent(
                name="trader_burst",
                months=(11,),
                actors=(trader_star,) + pick("trader", 14,
                                             exclude=(trader_star,)),
                relational=True,
                description=(
                    "a trader suddenly starts interacting with many "
                    "other traders (calm-period anomaly)"
                ),
            ),
            ScriptedEvent(
                name="assistant_anomaly",
                months=(24, 25),
                actors=(ASSISTANT,) + pick("legal", 4) + pick(
                    "vice_president", 3, exclude=(VOLUME_PLAYER,)),
                relational=True,
                description=(
                    "the executive assistant contacts legal and VPs "
                    "just before the CEO handover"
                ),
            ),
            ScriptedEvent(
                name="incoming_ceo",
                months=(26, 27),
                actors=(INCOMING_CEO,) + pick("president", 3)
                + pick("manager", 6),
                relational=True,
                description="the incoming CEO builds a new leadership "
                            "network on arrival",
            ),
            ScriptedEvent(
                name="key_player_hub",
                months=(32, 33, 34),
                actors=(KEY_PLAYER,) + pick("trader", 8) + pick("legal", 6)
                + pick("manager", 8) + pick("staff", 10)
                + pick("president", 2),
                relational=True,
                description=(
                    "the primary CEO abruptly emails dozens of employees "
                    "across all job roles (the hub-formation event CAD "
                    "must localize)"
                ),
            ),
            ScriptedEvent(
                name="volume_burst",
                months=(32, 33),
                actors=(VOLUME_PLAYER,),
                relational=False,
                description=(
                    "a VP multiplies email volume to existing contacts "
                    "only — no relationship change (ACT's false lead)"
                ),
            ),
            ScriptedEvent(
                name="acquisition_group",
                months=(35, 36),
                actors=(ENERGY_CEO,) + pick("president", 2)
                + pick("legal", 3),
                relational=True,
                description="an acquisition working group forms around "
                            "the energy-division CEO",
            ),
            ScriptedEvent(
                name="bankruptcy_churn",
                months=(37, 38, 39),
                actors=pick("legal", 6) + pick("president", 2)
                + pick("vice_president", 4, exclude=(VOLUME_PLAYER,))
                + pick("trader", 6),
                relational=True,
                description="legal, executives and traders rewire as "
                            "the bankruptcy unfolds",
            ),
        ]
        return events

    def _apply_events(self, rates: np.ndarray,
                      events: list[ScriptedEvent],
                      month: int,
                      index: dict[str, int]) -> None:
        """Overlay active events on this month's rate matrix in place."""
        for event in events:
            if month not in event.months:
                continue
            if event.name == "volume_burst":
                actor = index[event.actors[0]]
                # Amplify existing ties only: scale the actor's row.
                # The factor is strong enough that ACT's eigen-analysis
                # ranks this actor first; the actor's *relationships*
                # stay the same, so CAD attributes far fewer anomalous
                # edges to him than to the hub former.
                rates[actor, :] *= 8.0
                rates[:, actor] *= 8.0
                continue
            hub = index[event.actors[0]]
            others = [index[a] for a in event.actors[1:]]
            if event.name in ("key_player_hub", "trader_burst",
                              "assistant_anomaly", "incoming_ceo"):
                # Star pattern: the first actor contacts all others.
                rate = 6.0 if event.name == "key_player_hub" else 4.0
                for j in others:
                    rates[hub, j] = rates[j, hub] = max(
                        rates[hub, j], rate
                    )
            else:
                # Clique pattern: the whole group intercommunicates.
                members = [hub] + others
                for a in members:
                    for b in members:
                        if a < b:
                            rates[a, b] = rates[b, a] = max(
                                rates[a, b], 3.0
                            )

    def _sample_poisson(self, rates: np.ndarray) -> np.ndarray:
        """Sample a symmetric integer email-count matrix."""
        n = rates.shape[0]
        upper = np.triu(self._rng.poisson(rates), k=1).astype(np.float64)
        return upper + upper.T
