"""Discovering collaboration shifts in a co-authorship network.

The paper's DBLP experiment (Section 4.2.2): on yearly co-authorship
graphs, CAD surfaces authors whose collaboration pattern changed
structurally — a jump to a distant research field scores higher than a
hop to a nearby sub-field, and severed long-standing ties are found
too. This example runs the pipeline on the simulated network with all
three injected archetypes.

Run:  python examples/collaboration_shifts.py
"""

from collections import Counter

from repro import CadDetector
from repro.datasets import generate_dblp_instance
from repro.evaluation import rank_of
from repro.pipeline import render_table


def main() -> None:
    print("simulating the co-authorship network ...")
    data = generate_dblp_instance(seed=7)
    print(f"  {data.graph}")
    print()

    detector = CadDetector(method="exact", seed=0)
    report = detector.detect(data.graph, anomalies_per_transition=20)

    rows = []
    for event in data.events:
        scores = report.transitions[event.transition].scores
        index = data.graph.universe.index_of(event.author)
        rows.append((
            event.name,
            f"{data.graph[event.transition].time}->"
            f"{data.graph[event.transition + 1].time}",
            event.author,
            float(scores.node_scores[index]),
            rank_of(index, scores.node_scores),
        ))
    print(render_table(
        ("injected event", "transition", "author", "delta_N",
         "rank among all authors"),
        rows, title="CAD on the three collaboration-shift archetypes",
    ))
    print()

    cross = next(e for e in data.events
                 if e.name == "cross_field_switch")
    transition = report.transitions[cross.transition]
    counts: Counter = Counter()
    for u, v, _score in transition.anomalous_edges:
        counts[u] += 1
        counts[v] += 1
    print(render_table(
        ("author", "anomalous edges", "field"),
        [(label, count, data.fields[label])
         for label, count in counts.most_common(5)],
        title="2005 -> 2006: anomalous-edge counts "
              "(the cross-field mover should lead)",
    ))
    print()
    print("note the severity ordering: the cross-field switch outranks "
          "the sub-field switch, matching the paper's Rountev vs "
          "Orlando comparison.")


if __name__ == "__main__":
    main()
