"""Insider-threat detection on a simulated organizational email network.

The paper's motivating application (Section 1): find employees whose
*relationships* change anomalously, not merely employees whose email
volume changes. This example simulates a 151-employee organization over
48 months with scripted events (a CEO suddenly forming a cross-role
communication hub, a VP merely multiplying volume to existing contacts,
and several more), runs CAD and ACT, and contrasts what each flags.

Run:  python examples/insider_threat.py
"""

from collections import Counter

from repro import ActDetector, CadDetector
from repro.datasets import EnronLikeSimulator
from repro.pipeline import render_bar_chart, render_table


def main() -> None:
    print("simulating the organizational email network ...")
    data = EnronLikeSimulator(seed=42).generate()
    print(f"  {data.graph}")
    print("scripted events:")
    for event in data.events:
        months = f"months {min(event.months)}-{max(event.months)}"
        kind = "relational" if event.relational else "volume-only"
        print(f"  - {event.name} ({months}, {kind}): "
              f"{event.description}")
    print()

    detector = CadDetector(method="exact", seed=0)
    report = detector.detect(data.graph, anomalies_per_transition=5)

    print(render_bar_chart(
        [f"{i:02d} {data.graph[i + 1].time}"
         for i in range(data.graph.num_transitions)],
        report.node_counts(),
        title="CAD: anomalous node count per monthly transition",
    ))
    print()

    hub = 31  # the key player's hub forms between months 31 and 32
    transition = report.transitions[hub]
    counts: Counter = Counter()
    for u, v, _score in transition.anomalous_edges:
        counts[u] += 1
        counts[v] += 1
    print(render_table(
        ("employee", "anomalous edges", "role"),
        [(label, count, data.roles[label])
         for label, count in counts.most_common(6)],
        title=f"who drives the {transition.time_from} -> "
              f"{transition.time_to} anomaly?",
    ))
    print()

    act_report = ActDetector(window=3).detect(data.graph, top_nodes=5)
    act_nodes = act_report.transitions[hub].anomalous_nodes
    print("ACT's top nodes at the same transition:",
          ", ".join(str(node) for node in act_nodes) or "(none)")
    print()
    print(f"ground truth: the hub-forming CEO is {data.key_player!r}; "
          f"{data.volume_player!r} only multiplied volume to existing "
          "contacts.")
    print("CAD pins the hub former; ACT is drawn to the volume change.")


if __name__ == "__main__":
    main()
