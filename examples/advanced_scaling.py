"""Advanced: sparsify dense snapshots + swap the distance measure
+ shard the scoring across worker processes.

Three production levers on one workload:

1. the paper's §4.1 similarity graphs are *complete* (n² edges);
   effective-resistance sparsification shrinks them with bounded
   spectral error before CAD runs;
2. the distance inside the score is pluggable — here we compare
   commute time against shortest-path distance on a corrupted variant
   where a few static shortcut edges break the shortest-path signal
   (the paper's robustness argument, §3.1);
3. scoring parallelises: ``detect(graph, workers=N)`` shards the work
   across a process pool and merges a report identical to the serial
   one (see docs/parallelism.md for the determinism contract).

Run:  python examples/advanced_scaling.py
"""

import numpy as np

from repro import CadDetector, GenericDistanceDetector, detect, sparsify
from repro.datasets import generate_gaussian_mixture_instance
from repro.evaluation import auc_score, node_ranking_scores
from repro.graphs import DynamicGraph, GraphSnapshot
from repro.pipeline import render_table


def main() -> None:
    instance = generate_gaussian_mixture_instance(n=200, seed=1)
    detector = CadDetector(method="exact", seed=0)

    # -- lever 1: sparsification ------------------------------------------
    dense_scores = detector.score_sequence(instance.graph)[0]
    dense_auc = auc_score(
        instance.node_labels, node_ranking_scores(dense_scores)
    )
    samples = int(8 * 200 * np.log(200))
    sparse_graph = DynamicGraph([
        sparsify(instance.graph[0], samples, k=64, seed=2),
        sparsify(instance.graph[1], samples, k=64, seed=3),
    ])
    sparse_scores = detector.score_sequence(sparse_graph)[0]
    sparse_auc = auc_score(
        instance.node_labels, node_ranking_scores(sparse_scores)
    )
    print(render_table(
        ("input", "edges", "node AUC"),
        [
            ("dense similarity graph",
             instance.graph[0].num_edges, dense_auc),
            ("after resistance sampling",
             sparse_graph[0].num_edges, sparse_auc),
        ],
        title="lever 1: spectral sparsification before CAD",
        float_format="{:.3f}",
    ))
    print()

    # -- lever 2: the distance measure --------------------------------------
    rng = np.random.default_rng(0)
    before = instance.graph[0].adjacency.toarray()
    after = instance.graph[1].adjacency.toarray()
    added = 0
    while added < 6:  # static cross-cluster shortcuts, never scored
        i, j = rng.integers(0, 200, size=2)
        if i != j and instance.components[i] != instance.components[j]:
            for matrix in (before, after):
                matrix[i, j] = matrix[j, i] = 0.8
            added += 1
    g_t = GraphSnapshot(before, instance.graph.universe)
    corrupted = DynamicGraph([g_t, GraphSnapshot(after, g_t.universe)])

    rows = []
    for name in ("commute", "shortest_path"):
        scores = GenericDistanceDetector(name).score_sequence(
            corrupted
        )[0]
        rows.append((name, auc_score(
            instance.node_labels, node_ranking_scores(scores)
        )))
    print(render_table(
        ("distance inside the score", "node AUC"),
        rows,
        title="lever 2: distance choice under static shortcut edges",
        float_format="{:.3f}",
    ))
    print()
    print("commute time averages over all paths, so a handful of "
          "static shortcuts barely disturb it; shortest-path distance "
          "is decided by a single path and collapses.")
    print()

    # -- lever 3: multi-process scoring -------------------------------------
    serial = detect(instance.graph, anomalies_per_transition=5)
    parallel = detect(instance.graph, anomalies_per_transition=5,
                      workers=2, shard_by="transition")
    assert parallel.threshold == serial.threshold
    assert all(
        p.anomalous_edges == s.anomalous_edges
        for p, s in zip(parallel.transitions, serial.transitions)
    )
    print("lever 3: detect(..., workers=2) reproduced the serial "
          f"report exactly (threshold {parallel.threshold:.4g}); on "
          "multi-core machines long sequences and disconnected graphs "
          "score near-linearly faster.")


if __name__ == "__main__":
    main()
