"""Scalability demo: the approximate commute-time backend at size.

Runs CAD's two commute-time backends on growing random sparse graphs
(the Section 4.1.3 workload) and prints per-size wall-clock times plus
the fitted scaling exponent of the approximate path.

Run:  python examples/scalability_demo.py [max_n]
"""

import sys

import numpy as np

from repro import CadDetector
from repro.datasets import generate_scalability_instance
from repro.evaluation import fit_scaling_exponent, time_callable
from repro.pipeline import render_table


def main(max_n: int = 30000) -> None:
    sizes = [n for n in (1000, 3000, 10000, 30000, 100000)
             if n <= max_n]
    rows = []
    approx_times = []
    for n in sizes:
        instance = generate_scalability_instance(n, seed=n)
        graph = instance.graph
        approx = CadDetector(method="approx", k=16, seed=0)
        approx_time = time_callable(
            "approx", lambda: approx.score_sequence(graph), repeats=1
        ).best
        approx_times.append(approx_time)
        if n <= 1000:
            exact = CadDetector(method="exact")
            exact_time = time_callable(
                "exact", lambda: exact.score_sequence(graph), repeats=1
            ).best
        else:
            exact_time = float("nan")
        rows.append((n, int(instance.num_edges), exact_time,
                     approx_time))
        print(f"  n={n}: done")

    print()
    print(render_table(
        ("n", "m", "exact (s)", "approx k=16 (s)"), rows,
        title="CAD per-transition runtime by backend",
        float_format="{:.3f}",
    ))
    exponent = fit_scaling_exponent(
        np.array(sizes, dtype=float), np.array(approx_times)
    )
    print()
    print(f"approximate backend scaling exponent: {exponent:.2f} "
          "(the paper's O(n log n) reads as ~1 on a log-log fit)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30000)
