"""Online detection with streaming δ updates and explanations.

The paper's threshold selection is offline; its suggested online
variant re-derives δ from the scores seen so far. This example feeds
the simulated organizational network month by month, reports anomalies
*as they arrive*, and prints an attribution (which edges, with which
|ΔA| / |Δc| factors) for the headline actor — then shows that the
finalized streaming result matches the offline run exactly.

Run:  python examples/streaming_detection.py
"""

from repro import CadDetector, StreamingCadDetector, explain_node
from repro.datasets import EnronLikeSimulator


def main() -> None:
    data = EnronLikeSimulator(seed=42).generate()
    stream = StreamingCadDetector(
        anomalies_per_transition=5, warmup=6, method="exact", seed=0,
    )

    print("streaming the monthly snapshots ...")
    headline = None
    for snapshot in data.graph:
        result = stream.push(snapshot)
        if result is None or not result.is_anomalous:
            continue
        nodes = ", ".join(str(n) for n in result.anomalous_nodes[:4])
        print(f"  [{result.time_from} -> {result.time_to}] "
              f"{len(result.anomalous_edges)} anomalous edges; "
              f"top actors: {nodes}")
        if data.key_player in result.anomalous_nodes[:2]:
            headline = result

    if headline is not None:
        print()
        print("attribution for the headline actor:")
        explanation = explain_node(headline.scores, data.key_player)
        print(explanation.describe())

    print()
    offline = CadDetector(method="exact", seed=0).detect(
        data.graph, anomalies_per_transition=5
    )
    finalized = stream.finalize()
    same = (finalized.node_counts().tolist()
            == offline.node_counts().tolist())
    print(f"finalized streaming == offline global-delta result: {same}")
    print(f"final online delta: {stream.current_delta:.4g} "
          f"(offline: {offline.threshold:.4g})")


if __name__ == "__main__":
    main()
