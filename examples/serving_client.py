"""Stream a snapshot sequence against a live detection service.

Boots ``repro.service`` in-process on an ephemeral port, streams a
simulated interaction network into one session over HTTP, and checks
that the finalized report matches the offline ``repro.detect`` result
transition for transition — the service's core parity contract.

Run with ``PYTHONPATH=src python examples/serving_client.py``; pass
``--url http://host:port`` to stream against an already-running
``cad-detect serve`` instead.
"""

from __future__ import annotations

import argparse
import json
import threading
import urllib.request

import numpy as np
import scipy.sparse as sp

from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot, NodeUniverse
from repro.pipeline.api import detect
from repro.pipeline.serialize import report_to_dict, snapshot_to_payload


def simulated_stream(n=24, steps=12, seed=2024):
    """A drifting random network with occasional bursts."""
    rng = np.random.default_rng(seed)
    universe = NodeUniverse([f"user{i:02d}" for i in range(n)])
    weights = np.triu(
        (rng.random((n, n)) < 0.3) * rng.integers(1, 6, (n, n)), 1
    ).astype(float)
    snapshots = []
    for t in range(steps):
        w = weights.copy()
        for _ in range(4):
            i, j = rng.integers(0, n, 2)
            if i != j:
                w[min(i, j), max(i, j)] = float(rng.integers(0, 9))
        if t == steps // 2:  # a burst of new cross links
            for _ in range(5):
                i, j = rng.integers(0, n, 2)
                if i != j:
                    w[min(i, j), max(i, j)] += 6.0
        weights = w
        snapshots.append(
            GraphSnapshot(sp.csr_matrix(w + w.T), universe, time=t)
        )
    return DynamicGraph(snapshots)


def call(base, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def anomaly_sets(document):
    return [
        (
            entry["index"],
            sorted((e["source"], e["target"]) for e in entry["edges"]),
            sorted(entry["nodes"]),
        )
        for entry in document["transitions"]
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="existing service URL; default boots one "
                        "in-process on an ephemeral port")
    args = parser.parse_args()

    graph = simulated_stream()
    config = {"anomalies_per_transition": 3, "warmup": 3, "seed": 11}

    server = None
    if args.url is None:
        from repro.service import make_server
        server = make_server(port=0)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        base = f"http://127.0.0.1:{server.port}"
        print(f"booted in-process service at {base}")
    else:
        base = args.url.rstrip("/")

    try:
        session = call(base, "POST", "/sessions", config)["session"]
        print(f"session {session}: streaming {len(graph)} snapshots")
        for snapshot in graph:
            response = call(
                base, "POST", f"/sessions/{session}/snapshots",
                snapshot_to_payload(snapshot),
            )
            newest = [t for t in response["transitions"] if t]
            if newest:
                entry = newest[-1]
                print(f"  t={entry['time_from']}->{entry['time_to']}: "
                      f"{len(entry['edges'])} anomalous edges at "
                      f"delta={response['current_delta']:.4g}")
            else:
                print(f"  t={snapshot.time}: warming up")
        online = call(base, "POST", f"/sessions/{session}/finalize")
        call(base, "DELETE", f"/sessions/{session}")
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()

    offline = report_to_dict(detect(graph, **{
        "anomalies_per_transition": config["anomalies_per_transition"],
        "seed": config["seed"],
    }))
    match = anomaly_sets(online) == anomaly_sets(offline)
    print(f"HTTP-streamed report == offline detect() result: {match}")
    return 0 if match else 1


if __name__ == "__main__":
    raise SystemExit(main())
