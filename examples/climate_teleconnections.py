"""Finding climate teleconnections in precipitation networks.

The paper's Section 4.2.3: build, for each January, a 10-nearest-
neighbour graph over land locations in *precipitation-value* space, so
distant regions with similar rainfall become adjacent. A La Niña-style
year shifts several regions simultaneously but subtly; the resulting
graph rewiring is what CAD localizes — the flagged edges connect the
shifted regions to regions whose rainfall did not change.

Run:  python examples/climate_teleconnections.py
"""

import numpy as np

from repro import CadDetector
from repro.datasets import PrecipitationSimulator
from repro.datasets.precipitation import EVENT_SHIFTS
from repro.pipeline import render_series, render_table


def main() -> None:
    print("simulating 21 Januaries of world precipitation ...")
    data = PrecipitationSimulator(seed=3).generate(month=1)
    print(f"  {data.graph}")
    event = data.event_transition
    print(f"  injected teleconnection year: {data.years[event + 1]}")
    print()

    detector = CadDetector(method="exact", seed=0)
    scored = detector.score_sequence(data.graph)
    scores = scored[event]
    universe = data.graph.universe

    def region(label) -> str:
        name = data.node_region(universe.index_of(label))
        return name or str(label)

    print(render_table(
        ("location / region", "location / region", "delta_E"),
        [(region(u), region(v), value)
         for u, v, value in scores.top_edges(10)],
        title=f"top anomalous edges, January {data.years[event]} -> "
              f"{data.years[event + 1]}",
    ))
    print()

    masses = [s.total_edge_score() for s in scored]
    print(render_series(
        "total anomaly mass per January transition",
        [f"{a}->{b}" for a, b in zip(data.years[:-1], data.years[1:])],
        masses, x_label="years", y_label="mass", y_format="{:.3e}",
    ))
    print()
    print("regions shifted by the event:",
          ", ".join(sorted(EVENT_SHIFTS)))
    print("note how the flagged edges pair shifted regions with "
          "unchanged ones (eastern equatorial Africa, Amazon) — the "
          "teleconnection signature of the paper's Figure 9.")


if __name__ == "__main__":
    main()
