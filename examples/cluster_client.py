"""Route a session across service replicas and survive an owner kill.

Boots **two** ``repro.service`` replicas in-process on ephemeral
ports, sharing one ``shared:`` store with short leases, then streams
a simulated interaction network through a
:class:`repro.cluster.ClusterClient` — which picks the first replica
by rendezvous hashing, learns the real owner from ``307`` ownership
redirects, and, when the owner is killed mid-stream, fails over to
the survivor that adopts the session lease. The finalized report must
match an undisturbed single-replica run entry for entry.

Run with ``PYTHONPATH=src python examples/cluster_client.py``.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.cluster import ClusterClient, ClusterClientError, ServiceResponseError
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.snapshot import GraphSnapshot, NodeUniverse
from repro.pipeline.serialize import snapshot_to_payload
from repro.service import SessionManager, make_server
from repro.store import SharedStore

LEASE_TTL = 1.0
CONFIG = {"anomalies_per_transition": 3, "warmup": 3, "seed": 11}


def simulated_stream(n=24, steps=10, seed=2024):
    rng = np.random.default_rng(seed)
    universe = NodeUniverse([f"user{i:02d}" for i in range(n)])
    weights = np.triu(
        (rng.random((n, n)) < 0.3) * rng.integers(1, 6, (n, n)), 1
    ).astype(float)
    snapshots = []
    for t in range(steps):
        w = weights.copy()
        for _ in range(4):
            i, j = rng.integers(0, n, 2)
            if i != j:
                w[min(i, j), max(i, j)] = float(rng.integers(0, 9))
        weights = w
        snapshots.append(
            GraphSnapshot(sp.csr_matrix(w + w.T), universe, time=t)
        )
    return DynamicGraph(snapshots)


def boot_replica(shared_dir: Path, name: str):
    server = make_server(
        port=0, replica_id=name, lease_ttl=LEASE_TTL,
        store=SharedStore(shared_dir, fsync=False),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    server.advertise()
    print(f"replica {name} serving at http://127.0.0.1:{server.port}")
    return server


def kill(server) -> None:
    """SIGKILL stand-in: stop serving and abandon all in-memory state
    without releasing the lease — it must age out on its own."""
    server.manager.abandon()
    server.shutdown()
    server.server_close()


def push_until_adopted(client, session, payload, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.push(session, payload)
        except (ClusterClientError, ServiceResponseError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def anomaly_sets(document):
    return [
        (
            entry["index"],
            sorted((e["source"], e["target"]) for e in entry["edges"]),
            sorted(entry["nodes"]),
        )
        for entry in document["transitions"]
    ]


def main() -> int:
    graph = simulated_stream()
    payloads = [snapshot_to_payload(snapshot) for snapshot in graph]

    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        a = boot_replica(scratch / "shared", "replica-a")
        b = boot_replica(scratch / "shared", "replica-b")
        replicas = {f"http://127.0.0.1:{a.port}": a,
                    f"http://127.0.0.1:{b.port}": b}
        client = ClusterClient(list(replicas), quarantine=0.2)

        for probe in client.health():
            print(f"  {probe.replica_id}: healthy={probe.healthy}")

        session = client.create_session(CONFIG)["session"]
        owner_url = client._owners[session]
        print(f"session {session} owned by {owner_url}")

        half = len(payloads) // 2
        for payload in payloads[:half]:
            client.push(session, payload)

        print(f"killing the owner {owner_url} mid-stream ...")
        kill(replicas.pop(owner_url))
        push_until_adopted(client, session, payloads[half])
        survivor_url = client._owners[session]
        print(f"survivor {survivor_url} adopted the session")
        for payload in payloads[half + 1:]:
            client.push(session, payload)

        online = client.report(session)
        client.delete(session)
        for server in replicas.values():
            server.manager.drain()
            server.shutdown()
            server.server_close()

        baseline_manager = SessionManager(
            checkpoint_dir=scratch / "baseline")
        sid = baseline_manager.create_session(CONFIG)["session"]
        for payload in payloads:
            baseline_manager.push(sid, payload)
        offline = baseline_manager.report(sid)

    match = anomaly_sets(online) == anomaly_sets(offline)
    print(f"failed-over stream == undisturbed run: {match}")
    return 0 if match else 1


if __name__ == "__main__":
    raise SystemExit(main())
