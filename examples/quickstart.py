"""Quickstart: localize anomalous edges in a small dynamic graph.

Builds the paper's 17-node toy example (Section 2.2), runs CAD, and
prints the anomalous edges and nodes — the library's core workflow in
twenty lines.

Run:  python examples/quickstart.py
"""

from repro import CadDetector, toy_example
from repro.pipeline import render_table


def main() -> None:
    toy = toy_example()
    print(f"dynamic graph: {toy.graph}")
    print(f"ground truth anomalous nodes: {', '.join(toy.anomalous_nodes)}")
    print()

    detector = CadDetector(method="exact")
    report = detector.detect(toy.graph, anomalies_per_transition=6)

    transition = report.transitions[0]
    print(render_table(
        ("source", "target", "delta_E"),
        transition.anomalous_edges,
        title="anomalous edges (E_t)",
    ))
    print()
    print("anomalous nodes (V_t):", ", ".join(
        str(node) for node in transition.anomalous_nodes
    ))
    print()
    print("full report:")
    print(report.summary())


if __name__ == "__main__":
    main()
