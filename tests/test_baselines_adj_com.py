"""Unit tests for the ADJ and COM ablation baselines."""

import numpy as np
import pytest

from repro.baselines import AdjDetector, ComDetector
from repro.core import CadDetector
from repro.exceptions import DetectionError
from repro.graphs import GraphSnapshot


@pytest.fixture
def transition_pair(small_dynamic_graph):
    return small_dynamic_graph[0], small_dynamic_graph[1]


class TestAdj:
    def test_scores_are_weight_changes(self, transition_pair):
        g_t, g_t1 = transition_pair
        scores = AdjDetector().score_transition(g_t, g_t1)
        before = np.asarray(
            g_t.adjacency[scores.edge_rows, scores.edge_cols]
        ).ravel()
        after = np.asarray(
            g_t1.adjacency[scores.edge_rows, scores.edge_cols]
        ).ravel()
        np.testing.assert_allclose(scores.edge_scores,
                                   np.abs(after - before))

    def test_identical_graphs_zero(self, transition_pair):
        g_t, _ = transition_pair
        scores = AdjDetector().score_transition(g_t, g_t)
        assert scores.total_edge_score() == 0.0

    def test_blind_to_structure(self):
        """ADJ scores a benign change and a bridge change equally if
        the weight deltas match — CAD's documented contrast."""
        # path 0-1-2-3 plus clique edge inside {0,1}
        base = np.zeros((4, 4))
        for i in range(3):
            base[i, i + 1] = base[i + 1, i] = 2.0
        g_t = GraphSnapshot(base)
        changed = base.copy()
        changed[0, 1] = changed[1, 0] = 1.0  # tightly coupled wiggle
        changed[2, 3] = changed[3, 2] = 1.0  # bridge weakening
        g_t1 = GraphSnapshot(changed, g_t.universe)
        adj_scores = AdjDetector().score_transition(g_t, g_t1)
        matrix = adj_scores.edge_score_matrix()
        assert matrix[0, 1] == pytest.approx(matrix[2, 3])


class TestCom:
    def test_union_support_default(self, transition_pair):
        g_t, g_t1 = transition_pair
        scores = ComDetector(method="exact").score_transition(g_t, g_t1)
        # same support as ADJ
        adj = AdjDetector().score_transition(g_t, g_t1)
        assert scores.num_scored_edges == adj.num_scored_edges

    def test_all_support(self, path_graph):
        changed = path_graph.adjacency.tolil()
        changed[0, 1] = changed[1, 0] = 3.0
        g_t1 = GraphSnapshot(changed.tocsr(), path_graph.universe)
        scores = ComDetector(method="exact",
                             support="all").score_transition(
            path_graph, g_t1
        )
        assert scores.num_scored_edges == 6  # all C(4,2) pairs

    def test_flags_affected_unchanged_pairs(self, path_graph):
        """COM's failure mode: pairs with no weight change still score
        because their commute time moved."""
        changed = path_graph.adjacency.tolil()
        changed[1, 2] = changed[2, 1] = 0.1  # weaken the middle edge
        g_t1 = GraphSnapshot(changed.tocsr(), path_graph.universe)
        scores = ComDetector(method="exact",
                             support="all").score_transition(
            path_graph, g_t1
        )
        matrix = scores.edge_score_matrix()
        assert matrix[0, 3] > 0  # unchanged pair, still flagged by COM

    def test_rejects_bad_support(self):
        with pytest.raises(DetectionError):
            ComDetector(support="everything")

    def test_identical_graphs_zero(self, transition_pair):
        g_t, _ = transition_pair
        scores = ComDetector(method="exact").score_transition(g_t, g_t)
        assert scores.total_edge_score() == pytest.approx(0.0, abs=1e-6)


class TestProductAblation:
    def test_cad_suppresses_both_failure_modes(self):
        """The toy contrast of Section 3.4 in miniature: CAD ranks the
        bridge change above the benign wiggle; ADJ cannot."""
        base = np.zeros((6, 6))
        # two triangles {0,1,2} and {3,4,5} bridged by 2-3
        for i, j in [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]:
            base[i, j] = base[j, i] = 2.0
        base[2, 3] = base[3, 2] = 2.0
        g_t = GraphSnapshot(base)
        changed = base.copy()
        changed[0, 1] = changed[1, 0] = 1.0   # benign wiggle
        changed[2, 3] = changed[3, 2] = 1.0   # bridge weakening
        g_t1 = GraphSnapshot(changed, g_t.universe)

        cad = CadDetector(method="exact").score_transition(g_t, g_t1)
        adj = AdjDetector().score_transition(g_t, g_t1)
        cad_matrix = cad.edge_score_matrix()
        adj_matrix = adj.edge_score_matrix()
        assert cad_matrix[2, 3] > 3 * cad_matrix[0, 1]
        assert adj_matrix[2, 3] == pytest.approx(adj_matrix[0, 1])
