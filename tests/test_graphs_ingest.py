"""Unit tests for raw-interaction ingestion and sliding windows."""

import datetime as dt

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    InteractionRecord,
    aggregate_interactions,
    month_of,
    sliding_windows,
    year_of,
)


def _record(year, month, day, source, target, weight=1.0):
    return InteractionRecord(
        dt.date(year, month, day), source, target, weight
    )


class TestPeriodKeys:
    def test_month_of(self):
        assert month_of(dt.date(2001, 7, 15)) == "2001-07"

    def test_year_of(self):
        assert year_of(dt.datetime(1999, 12, 31, 23, 59)) == 1999


class TestAggregateMonthly:
    def test_buckets_by_month(self):
        records = [
            _record(2001, 1, 3, "a", "b"),
            _record(2001, 1, 20, "a", "b"),
            _record(2001, 2, 5, "b", "c"),
        ]
        graph = aggregate_interactions(records, freq="month")
        assert len(graph) == 2
        assert graph[0].time == "2001-01"
        assert graph[0].weight("a", "b") == 2.0
        assert graph[1].weight("b", "c") == 1.0

    def test_gap_filled_with_empty_snapshot(self):
        records = [
            _record(2001, 1, 1, "a", "b"),
            _record(2001, 3, 1, "a", "b"),
        ]
        graph = aggregate_interactions(records, freq="month")
        assert [s.time for s in graph] == ["2001-01", "2001-02",
                                           "2001-03"]
        assert graph[1].num_edges == 0

    def test_gap_fill_disabled(self):
        records = [
            _record(2001, 1, 1, "a", "b"),
            _record(2001, 3, 1, "a", "b"),
        ]
        graph = aggregate_interactions(records, freq="month",
                                       fill_gaps=False)
        assert len(graph) == 2

    def test_year_rollover(self):
        records = [
            _record(2000, 12, 1, "a", "b"),
            _record(2001, 1, 1, "a", "b"),
        ]
        graph = aggregate_interactions(records, freq="month")
        assert [s.time for s in graph] == ["2000-12", "2001-01"]

    def test_shared_universe(self):
        records = [
            _record(2001, 1, 1, "a", "b"),
            _record(2001, 2, 1, "c", "d"),
        ]
        graph = aggregate_interactions(records)
        assert set(graph.universe.labels) == {"a", "b", "c", "d"}
        assert graph[0].num_nodes == 4

    def test_plain_tuples_accepted(self):
        graph = aggregate_interactions([
            (dt.date(2001, 1, 1), "a", "b"),
            (dt.date(2001, 1, 2), "a", "b", 3.0),
        ])
        assert graph[0].weight("a", "b") == 4.0

    def test_empty_rejected(self):
        with pytest.raises(GraphConstructionError):
            aggregate_interactions([])

    def test_bad_freq_rejected(self):
        with pytest.raises(GraphConstructionError):
            aggregate_interactions(
                [_record(2001, 1, 1, "a", "b")], freq="week"
            )

    def test_bad_record_rejected(self):
        with pytest.raises(GraphConstructionError):
            aggregate_interactions([(dt.date(2001, 1, 1), "a")])


class TestAggregateYearly:
    def test_buckets_by_year(self):
        records = [
            _record(2005, 3, 1, "x", "y"),
            _record(2005, 9, 1, "x", "y"),
            _record(2007, 1, 1, "y", "z"),
        ]
        graph = aggregate_interactions(records, freq="year")
        assert [s.time for s in graph] == [2005, 2006, 2007]
        assert graph[0].weight("x", "y") == 2.0
        assert graph[1].num_edges == 0


class TestSlidingWindows:
    @pytest.fixture
    def graph(self):
        records = [
            _record(2001, m, 1, "a", "b") for m in range(1, 7)
        ]
        return aggregate_interactions(records)

    def test_window_count(self, graph):
        windows = sliding_windows(graph, window=3, stride=1)
        assert len(windows) == 4
        assert all(len(w) == 3 for w in windows)

    def test_stride(self, graph):
        windows = sliding_windows(graph, window=2, stride=2)
        assert [w[0].time for w in windows] == [
            "2001-01", "2001-03", "2001-05",
        ]

    def test_window_too_small(self, graph):
        with pytest.raises(GraphConstructionError):
            sliding_windows(graph, window=1)

    def test_sequence_shorter_than_window(self, graph):
        with pytest.raises(GraphConstructionError):
            sliding_windows(graph.subsequence(0, 2), window=5)


class TestIngestToDetection:
    def test_end_to_end(self):
        """Ingested records drive detection directly."""
        rng = np.random.default_rng(0)
        records = []
        people = [f"p{i}" for i in range(12)]
        for month in range(1, 7):
            for _ in range(60):
                i, j = rng.integers(0, 6, size=2)  # clique of 6 talks
                if i != j:
                    records.append(_record(2001, month, 1,
                                           people[i], people[j]))
                i, j = rng.integers(6, 12, size=2)
                if i != j:
                    records.append(_record(2001, month, 1,
                                           people[i], people[j]))
        # month 6: a sudden cross-group tie
        for _ in range(8):
            records.append(_record(2001, 6, 2, "p0", "p11"))
        graph = aggregate_interactions(records)

        from repro import CadDetector

        report = CadDetector(method="exact").detect(
            graph, anomalies_per_transition=2
        )
        final = report.transitions[-1]
        assert final.is_anomalous
        top = final.anomalous_edges[0]
        assert {top[0], top[1]} == {"p0", "p11"}
