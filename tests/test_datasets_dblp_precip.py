"""Tests for the DBLP-like and precipitation simulators."""

import numpy as np
import pytest

from repro.datasets import (
    DblpLikeSimulator,
    PrecipitationSimulator,
    generate_dblp_instance,
)
from repro.datasets.precipitation import EVENT_SHIFTS, REGIONS
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def dblp():
    return generate_dblp_instance(seed=7, num_authors=300, num_fields=5)


class TestDblpGeneration:
    def test_dimensions(self, dblp):
        assert dblp.graph.num_nodes == 300
        assert len(dblp.graph) == 6  # 2005..2010

    def test_years_as_times(self, dblp):
        assert dblp.graph[0].time == 2005
        assert dblp.graph[5].time == 2010

    def test_three_events(self, dblp):
        names = {event.name for event in dblp.events}
        assert names == {
            "cross_field_switch", "sub_field_switch", "severed_tie",
        }

    def test_event_edges_present_after_transition(self, dblp):
        cross = next(e for e in dblp.events
                     if e.name == "cross_field_switch")
        before = dblp.graph[cross.transition]
        after = dblp.graph[cross.transition + 1]
        partner = cross.partners[0]
        assert before.weight(cross.author, partner) == 0.0
        assert after.weight(cross.author, partner) > 0.0

    def test_severed_tie_disappears(self, dblp):
        severed = next(e for e in dblp.events if e.name == "severed_tie")
        lost = severed.partners[0]
        before = dblp.graph[severed.transition]
        after = dblp.graph[severed.transition + 1]
        assert before.weight(severed.author, lost) > 0.0
        assert after.weight(severed.author, lost) == 0.0

    def test_cross_field_partners_in_other_field(self, dblp):
        cross = next(e for e in dblp.events
                     if e.name == "cross_field_switch")
        author_field = dblp.fields[cross.author]
        for partner in cross.partners:
            assert dblp.fields[partner] != author_field

    def test_deterministic(self):
        a = generate_dblp_instance(seed=3, num_authors=150)
        b = generate_dblp_instance(seed=3, num_authors=150)
        diff = a.graph[2].adjacency - b.graph[2].adjacency
        assert abs(diff).max() == 0.0

    def test_rejects_too_few_authors(self):
        with pytest.raises(DatasetError):
            DblpLikeSimulator(num_authors=50, num_fields=6)

    def test_rejects_bad_years(self):
        with pytest.raises(DatasetError):
            DblpLikeSimulator(num_authors=300, years=(2010, 2005))


@pytest.fixture(scope="module")
def precip():
    return PrecipitationSimulator(
        lat_step=10.0, lon_step=10.0, num_years=8,
        start_year=1990, event_year=1995, seed=3,
    ).generate(month=1)


class TestPrecipitation:
    def test_dimensions(self, precip):
        assert len(precip.graph) == 8
        assert precip.values.shape == (8, precip.graph.num_nodes)

    def test_event_index(self, precip):
        assert precip.years[precip.event_year_index] == 1995
        assert precip.event_transition == precip.event_year_index - 1

    def test_regions_nonempty(self, precip):
        for name in REGIONS:
            assert precip.region_nodes[name].size > 0

    def test_knn_degree(self, precip):
        snapshot = precip.graph[0]
        degrees = np.asarray(
            (snapshot.adjacency > 0).sum(axis=1)
        ).ravel()
        assert degrees.min() >= 10  # symmetrised 10-NN

    def test_shifts_applied(self, precip):
        event = precip.event_year_index
        for region, shift in EVENT_SHIFTS.items():
            nodes = precip.region_nodes[region]
            series = precip.values[:, nodes].mean(axis=1)
            others = np.delete(series, event)
            if shift > 0:
                assert series[event] > others.max()
            else:
                assert series[event] < others.min()

    def test_unchanged_regions_stay_put(self, precip):
        event = precip.event_year_index
        series = precip.yearly_region_means("eastern_equatorial_africa")
        others = np.delete(series, event)
        spread = others.max() - others.min()
        assert abs(series[event] - others.mean()) < 2 * max(spread, 0.01)

    def test_node_region_lookup(self, precip):
        nodes = precip.region_nodes["brazil"]
        assert precip.node_region(int(nodes[0])) == "brazil"

    def test_shifted_nodes_cover_all_event_regions(self, precip):
        shifted = set(precip.shifted_nodes().tolist())
        for region in EVENT_SHIFTS:
            assert set(precip.region_nodes[region].tolist()) <= shifted

    def test_rejects_event_outside_span(self):
        with pytest.raises(DatasetError):
            PrecipitationSimulator(num_years=5, start_year=2000,
                                   event_year=2010)

    def test_rejects_bad_month(self, precip):
        simulator = PrecipitationSimulator(
            lat_step=20.0, lon_step=20.0, num_years=5,
            start_year=1990, event_year=1992,
        )
        with pytest.raises(DatasetError):
            simulator.generate(month=0)

    def test_all_months(self):
        simulator = PrecipitationSimulator(
            lat_step=10.0, lon_step=10.0, num_years=4,
            start_year=1990, event_year=1992, knn=3,
        )
        by_month = simulator.generate_all_months()
        assert set(by_month) == set(range(1, 13))
        january = by_month[1]
        july = by_month[7]
        # seasonality: southern-hemisphere regions are wetter in their
        # summer (January) than in July
        jan_mean = january.yearly_region_means("southern_africa").mean()
        jul_mean = july.yearly_region_means("southern_africa").mean()
        assert jan_mean != pytest.approx(jul_mean, rel=1e-3)
