"""Client-side session routing: rendezvous, redirects, failover.

Two real HTTP replicas share one :class:`~repro.store.SharedStore`;
a :class:`~repro.cluster.ClusterClient` must land every session
request on the owning replica — by learned ownership, by following
``307`` ownership redirects, or (when the owner dies) by failing over
to a survivor that adopts the session after the lease TTL — and the
resulting stream must stay bit-for-bit equal to an undisturbed
single-replica run.
"""

from __future__ import annotations

import http.server
import json
import threading
import time

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterClientError,
    ServiceResponseError,
    rendezvous_order,
)
from repro.observability import MetricsRegistry, current_registry, disable, enable
from repro.service import SessionManager, make_server
from repro.store import SharedStore

from .test_service_sessions import entries, random_payloads

#: Lease term: short enough for fast adoption tests, long enough that
#: requests always finish inside one term.
TTL = 0.5

CONFIG = {"seed": 3, "warmup": 2}


@pytest.fixture(autouse=True)
def isolated_registry():
    previous = current_registry()
    enable(MetricsRegistry())
    yield
    if previous is None:
        disable()
    else:
        enable(previous)


@pytest.fixture
def payloads():
    return random_payloads()


class Replica:
    """One served replica: HTTP server + thread + advertised URL."""

    def __init__(self, tmp_path, name: str):
        self.server = make_server(
            port=0, replica_id=name, lease_ttl=TTL, catalog_ttl=2.0,
            store=SharedStore(tmp_path / "shared", fsync=False),
        )
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True,
        )
        self.thread.start()
        self.server.advertise()
        self.url = f"http://127.0.0.1:{self.server.port}"

    def kill(self) -> None:
        """SIGKILL equivalent: stop serving, abandon all state (the
        lease and catalogue records age out on their own)."""
        self.server.manager.abandon()
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def stop(self) -> None:
        self.server.manager.drain()
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


@pytest.fixture
def pair(tmp_path):
    a = Replica(tmp_path, "replica-a")
    b = Replica(tmp_path, "replica-b")
    yield a, b
    for replica in (a, b):
        try:
            replica.stop()
        except Exception:
            pass


def baseline(tmp_path, payloads):
    manager = SessionManager(checkpoint_dir=tmp_path / "baseline")
    sid = manager.create_session(CONFIG)["session"]
    for payload in payloads:
        manager.push(sid, payload)
    return entries(manager.report(sid))


def push_until_adopted(client, sid, payload, timeout=15.0):
    """Push through a failover window: retry while the survivor waits
    out the dead owner's lease."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.push(sid, payload)
        except (ClusterClientError, ServiceResponseError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


class TestRendezvous:
    def test_order_is_deterministic(self):
        replicas = ["http://a:1", "http://b:2", "http://c:3"]
        assert rendezvous_order(replicas, "s-1") \
            == rendezvous_order(list(reversed(replicas)), "s-1")

    def test_keys_spread_over_replicas(self):
        replicas = [f"http://r{i}:80" for i in range(4)]
        firsts = {
            rendezvous_order(replicas, f"session-{k}")[0]
            for k in range(64)
        }
        assert len(firsts) == 4  # every replica is someone's first

    def test_removing_a_replica_only_moves_its_keys(self):
        replicas = [f"http://r{i}:80" for i in range(4)]
        keys = [f"session-{k}" for k in range(64)]
        before = {k: rendezvous_order(replicas, k)[0] for k in keys}
        survivors = replicas[:-1]
        after = {k: rendezvous_order(survivors, k)[0] for k in keys}
        for key in keys:
            if before[key] != replicas[-1]:
                assert after[key] == before[key]

    def test_client_requires_replicas(self):
        with pytest.raises(ClusterClientError):
            ClusterClient([])


class TestRouting:
    def test_stream_through_client_matches_single_replica(
            self, pair, tmp_path, payloads):
        a, b = pair
        client = ClusterClient([a.url, b.url])
        sid = client.create_session(CONFIG)["session"]
        for payload in payloads:
            client.push(sid, payload)
        report = client.report(sid)
        assert entries(report) == baseline(tmp_path, payloads)

    def test_creator_is_learned_as_owner(self, pair, payloads):
        a, b = pair
        client = ClusterClient([a.url, b.url])
        result = client.create_session(CONFIG)
        sid = result["session"]
        owner = client._owners[sid]
        assert owner in (a.url, b.url)
        client.push(sid, payloads[0])
        assert client._owners[sid] == owner

    def test_redirect_to_owner_is_followed(self, pair, payloads):
        """A client that only knows the *wrong* replica still lands on
        the owner: the wrong replica answers 307 + Location from the
        shared catalogue and the client re-sends the body there."""
        a, b = pair
        creator = ClusterClient([a.url])
        sid = creator.create_session(CONFIG)["session"]
        creator.push(sid, payloads[0])
        misdirected = ClusterClient([b.url])
        result = misdirected.push(sid, payloads[1])
        assert result["pushed"] == 1
        # The redirect target was learned: the owner is now cached
        # even though it was never in the replica list.
        assert misdirected._owners[sid] == a.url
        registry = current_registry()
        assert registry.counter_value(
            "cluster_client_redirects_total") >= 1
        assert registry.counter_value(
            "service_ownership_redirects_total") >= 1

    def test_session_info_and_delete_route(self, pair, payloads):
        a, b = pair
        client = ClusterClient([a.url, b.url])
        sid = client.create_session(CONFIG)["session"]
        client.push(sid, payloads[0])
        info = client.session_info(sid)
        assert info["session"] == sid
        assert client.delete(sid)["deleted"] is True
        assert sid not in client._owners


class TestFailover:
    def test_owner_death_fails_over_to_survivor(
            self, pair, tmp_path, payloads):
        a, b = pair
        client = ClusterClient([a.url, b.url], quarantine=0.2)
        sid = client.create_session(CONFIG)["session"]
        for payload in payloads[:4]:
            client.push(sid, payload)
        owner_url = client._owners[sid]
        dead, survivor = (a, b) if owner_url == a.url else (b, a)
        dead.kill()
        # The survivor adopts once the lease lapses; the client rides
        # the window out with retries, then sticks to the survivor.
        push_until_adopted(client, sid, payloads[4])
        for payload in payloads[5:]:
            client.push(sid, payload)
        assert client._owners[sid] == survivor.url
        assert entries(client.report(sid)) \
            == baseline(tmp_path, payloads)
        assert current_registry().counter_value(
            "cluster_client_failovers_total") >= 1

    def test_health_reports_both_states(self, pair):
        a, b = pair
        client = ClusterClient([a.url, b.url], timeout=5.0)
        healthy = client.health()
        assert [probe.healthy for probe in healthy] == [True, True]
        assert sorted(p.replica_id for p in healthy) \
            == ["replica-a", "replica-b"]
        a.kill()
        probes = {p.url: p for p in client.health()}
        assert not probes[a.url].healthy
        assert probes[a.url].error
        assert probes[b.url].healthy

    def test_replica_catalogue_lists_live_replicas(self, pair):
        a, b = pair
        client = ClusterClient([a.url, b.url])
        catalogue = client.replica_catalogue()
        names = {record["replica"]
                 for record in catalogue["replicas"]}
        assert names == {"replica-a", "replica-b"}
        urls = {record["url"] for record in catalogue["replicas"]}
        assert urls == {a.url, b.url}

    def test_killed_replica_ages_out_of_catalogue(self, pair):
        a, b = pair
        client = ClusterClient([a.url, b.url])
        a.kill()  # abandon(): no withdrawal, the record must expire
        deadline = time.monotonic() + 30
        while True:
            names = {record["replica"] for record
                     in client.replica_catalogue()["replicas"]}
            if names == {"replica-b"}:
                break
            assert time.monotonic() < deadline, names
            time.sleep(0.5)


class ScriptedReplica:
    """An HTTP stub answering from a scripted (status, headers, body)
    queue; 200 ``{"ok": true}`` once the script runs out."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = 0
        stub = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def _answer(self):
                stub.requests += 1
                status, headers, body = (
                    stub.script.pop(0) if stub.script
                    else (200, {}, {"ok": True})
                )
                payload = json.dumps(body).encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_POST = do_DELETE = _answer

            def log_message(self, *args):
                pass

        self.server = http.server.ThreadingHTTPServer(
            ("127.0.0.1", 0), Handler
        )
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True,
        )
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.server.server_port}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


class TestRetryAfter:
    def request(self, stub, **kwargs):
        client = ClusterClient([stub.url], **kwargs)
        return client.replica_catalogue()

    def test_retry_after_header_is_honored(self):
        stub = ScriptedReplica([
            (429, {"Retry-After": "0.2"}, {"error": "busy"}),
        ])
        try:
            started = time.monotonic()
            assert self.request(stub)["ok"] is True
            assert time.monotonic() - started >= 0.2
            assert stub.requests == 2
        finally:
            stub.close()
        assert current_registry().counter_value(
            "client_retry_after_honored_total") == 1

    def test_retry_after_body_field_on_503(self):
        stub = ScriptedReplica([
            (503, {}, {"error": "overloaded", "retry_after": 0.05}),
            (503, {}, {"error": "overloaded", "retry_after": 0.05}),
        ])
        try:
            assert self.request(stub)["ok"] is True
            assert stub.requests == 3
        finally:
            stub.close()
        assert current_registry().counter_value(
            "client_retry_after_honored_total") == 2

    def test_exhausted_budget_raises_the_underlying_error(self):
        from repro.cluster.client import RETRY_AFTER_BUDGET

        stub = ScriptedReplica([
            (429, {"Retry-After": "0.01"}, {"error": "busy"}),
        ] * 10)
        try:
            with pytest.raises(ServiceResponseError) as info:
                self.request(stub)
            assert info.value.status == 429
            assert stub.requests == RETRY_AFTER_BUDGET + 1
        finally:
            stub.close()

    def test_429_without_retry_after_raises_immediately(self):
        stub = ScriptedReplica([(429, {}, {"error": "busy"})])
        try:
            with pytest.raises(ServiceResponseError):
                self.request(stub)
            assert stub.requests == 1
        finally:
            stub.close()

    def test_retry_after_wait_is_clamped(self, monkeypatch):
        from repro.cluster import client as client_module

        slept = []
        monkeypatch.setattr(client_module.time, "sleep",
                            lambda s: slept.append(s))
        stub = ScriptedReplica([
            (503, {"Retry-After": "3600"}, {"error": "maintenance"}),
        ])
        try:
            assert self.request(stub)["ok"] is True
        finally:
            stub.close()
        assert slept == [client_module.RETRY_AFTER_CAP]

    def test_malformed_retry_after_is_ignored(self):
        stub = ScriptedReplica([
            (429, {"Retry-After": "soon"}, {"error": "busy"}),
        ])
        try:
            with pytest.raises(ServiceResponseError):
                self.request(stub)
            assert stub.requests == 1
        finally:
            stub.close()


class TestQuarantine:
    def make_client(self):
        return ClusterClient(["http://a:1", "http://b:2"],
                             quarantine=0.5)

    def test_holds_grow_exponentially_with_jitter(self):
        from repro.cluster.client import QUARANTINE_CAP

        client = self.make_client()
        url = "http://a:1"
        holds = []
        for _ in range(8):
            client._note_failure(url)
            holds.append(client._down_until[url] - time.monotonic())
        for index, hold in enumerate(holds):
            base = min(QUARANTINE_CAP, 0.5 * 2 ** index)
            assert base * 0.99 <= hold <= base * 1.26
        assert client._fail_streak[url] == 8

    def test_success_resets_the_streak(self):
        client = self.make_client()
        for _ in range(3):
            client._note_failure("http://a:1")
        client._note_success("http://a:1")
        assert "http://a:1" not in client._fail_streak
        assert "http://a:1" not in client._down_until
        client._note_failure("http://a:1")
        assert client._fail_streak["http://a:1"] == 1

    def test_streak_decays_after_quiet_period(self):
        from repro.cluster.client import QUARANTINE_DECAY

        client = self.make_client()
        for _ in range(5):
            client._note_failure("http://a:1")
        client._last_failure["http://a:1"] = (
            time.monotonic() - QUARANTINE_DECAY - 1
        )
        client._note_failure("http://a:1")
        assert client._fail_streak["http://a:1"] == 1

    def test_quarantined_replica_is_tried_last(self):
        client = self.make_client()
        first = client._candidates("some-session")[0]
        client._note_failure(first)
        assert client._candidates("some-session")[-1] == first
