"""Remote shard execution: registration, parity, failure healing.

The contract under test is the tentpole one: a coordinator plus remote
``cluster-worker`` processes produce **bit-for-bit** the same scores as
a serial ``detect()`` — including when a worker is killed mid-run and
its shards requeue onto survivors. In-process worker threads keep the
fast cases cheap; the kill scenario uses real subprocesses (a chaos
kill is ``os._exit``, which would take the test process with it).
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import CadDetector
from repro.cluster import ClusterCoordinator, ClusterEngine, run_worker
from repro.exceptions import ParallelExecutionError
from repro.resilience.chaos import ChaosSpec

from .test_parallel_determinism import (
    assert_reports_bitwise_equal,
    disconnected_sequence,
    make_sequence,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


@contextlib.contextmanager
def thread_workers(coordinator, count: int, max_runs: int = 1):
    """In-process workers — cheap, but unkillable (shared process)."""
    threads = []
    for index in range(count):
        thread = threading.Thread(
            target=run_worker,
            args=(coordinator.host, coordinator.port),
            kwargs={"worker_id": f"thread-{index}",
                    "max_runs": max_runs},
            daemon=True, name=f"cluster-worker-{index}",
        )
        thread.start()
        threads.append(thread)
    coordinator.wait_for_workers(count, timeout=30)
    try:
        yield
    finally:
        coordinator.close()
        for thread in threads:
            thread.join(timeout=10)


@contextlib.contextmanager
def process_workers(coordinator, count: int):
    """Real ``cad-detect cluster-worker`` subprocesses via the CLI."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster-worker",
             coordinator.host, str(coordinator.port),
             "--worker-id", f"proc-{index}"],
            env=env,
        )
        for index in range(count)
    ]
    coordinator.wait_for_workers(count, timeout=60)
    try:
        yield procs
    finally:
        coordinator.close()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


class TestParity:
    def test_transition_sharding_is_bitwise_serial(self):
        graph = make_sequence(num_snapshots=5)
        serial = CadDetector(
            method="exact", seed=13, seed_mode="content",
        ).detect(graph, anomalies_per_transition=3)
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2):
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", chunk_size=1,
                method="exact", seed=13,
            ).detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(serial, remote)

    def test_approx_backend_is_bitwise_serial(self):
        graph = make_sequence(num_snapshots=4)
        serial = CadDetector(
            method="approx", k=12, seed=21, seed_mode="content",
        ).detect(graph, anomalies_per_transition=3)
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2):
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", method="approx", k=12, seed=21,
            ).detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(serial, remote)

    def test_component_sharding_matches_local_engine_bitwise(self):
        """Component shards round identically local and remote — the
        remote worker runs the same per-component code on the same
        arrays, so the two parallel modes agree bit for bit."""
        from repro import ParallelCadDetector

        graph = disconnected_sequence()
        local = ParallelCadDetector(
            workers=2, shard_by="component", method="exact", seed=3,
        ).detect(graph, anomalies_per_transition=3)
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2):
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="component", method="exact", seed=3,
            ).detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(local, remote)

    def test_workers_are_reused_across_runs(self):
        """RELEASE parks workers back in the ready pool; a second run
        adopts them under a fresh run token with full parity."""
        graph = make_sequence(num_snapshots=4)
        serial = CadDetector(
            method="exact", seed=7, seed_mode="content",
        ).detect(graph, anomalies_per_transition=3)
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2, max_runs=2):
            engine = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", method="exact", seed=7,
            )
            first = engine.detect(graph, anomalies_per_transition=3)
            assert coordinator.ready_count() == 2
            second = engine.detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(serial, first)
        assert_reports_bitwise_equal(serial, second)


class TestFailure:
    def test_killed_worker_requeues_onto_survivor_bitwise(self):
        """A worker SIGKILLed mid-shard (chaos ``os._exit``) costs
        nothing but time: the supervisor requeues its shard onto the
        survivor and the merged result still matches serial exactly."""
        graph = make_sequence(num_snapshots=5)
        serial = CadDetector(
            method="exact", seed=13, seed_mode="content",
        ).detect(graph, anomalies_per_transition=3)
        chaos = ChaosSpec(kill_transitions=(1,), attempts=1)
        with ClusterCoordinator() as coordinator, \
                process_workers(coordinator, 2) as procs:
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", chunk_size=1,
                method="exact", seed=13, chaos=chaos,
            ).detect(graph, anomalies_per_transition=3)
            # Exactly one worker died (first attempt at transition 1).
            exits = [proc.poll() for proc in procs]
            assert exits.count(ChaosSpec().exit_code) == 1
        assert_reports_bitwise_equal(serial, remote)

    def test_permanent_fault_escalates(self):
        """A fault that survives every retry exhausts the shard budget
        and surfaces as ParallelExecutionError, not a hang."""
        graph = make_sequence(num_snapshots=4)
        chaos = ChaosSpec(kill_transitions=(1,), attempts=None)
        with ClusterCoordinator() as coordinator, \
                process_workers(coordinator, 2):
            engine = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", chunk_size=1,
                method="exact", seed=13, chaos=chaos,
                max_shard_retries=1,
            )
            with pytest.raises(ParallelExecutionError):
                engine.detect(graph, anomalies_per_transition=3)

    def test_registration_timeout_escalates(self):
        graph = make_sequence(num_snapshots=3)
        with ClusterCoordinator() as coordinator:
            engine = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                registration_timeout=0.2, seed=1,
            )
            with pytest.raises(ParallelExecutionError,
                               match="registered"):
                engine.detect(graph, anomalies_per_transition=3)


class TestCoordinator:
    def test_ready_pool_inventory(self):
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2):
            inventory = coordinator.workers()
            assert sorted(w["worker_id"] for w in inventory) \
                == ["thread-0", "thread-1"]
            for worker in inventory:
                assert worker["pid"] == os.getpid()

    def test_default_pool_size_tracks_registrations(self):
        with ClusterCoordinator() as coordinator, \
                thread_workers(coordinator, 2):
            engine = ClusterEngine(coordinator, min_workers=1)
            assert engine.workers == 2
