"""Unit tests for set metrics, rankings and sweep harnesses."""

import numpy as np
import pytest

from repro.core import CadDetector, TransitionScores
from repro.evaluation import (
    evaluate_detector,
    compare_detectors,
    fit_scaling_exponent,
    node_ranking_scores,
    precision_at_k,
    rank_of,
    recall_at_k,
    set_metrics,
    sweep_parameter,
    time_callable,
)
from repro.exceptions import EvaluationError
from repro.graphs import NodeUniverse


def _scores():
    universe = NodeUniverse.of_size(4)
    rows = np.array([0, 1], dtype=np.int64)
    cols = np.array([1, 2], dtype=np.int64)
    values = np.array([5.0, 2.0])
    node = np.zeros(4)
    np.add.at(node, rows, values)
    np.add.at(node, cols, values)
    return TransitionScores(
        universe=universe, edge_rows=rows, edge_cols=cols,
        edge_scores=values, node_scores=node, detector="X",
    )


class TestNodeRanking:
    def test_max_edge(self):
        ranking = node_ranking_scores(_scores(), "max_edge")
        assert ranking.tolist() == [5.0, 5.0, 2.0, 0.0]

    def test_sum(self):
        ranking = node_ranking_scores(_scores(), "sum")
        assert ranking.tolist() == [5.0, 7.0, 2.0, 0.0]

    def test_native(self):
        ranking = node_ranking_scores(_scores(), "native")
        assert ranking.tolist() == [5.0, 7.0, 2.0, 0.0]

    def test_edge_less_falls_back(self):
        scores = TransitionScores(
            universe=NodeUniverse.of_size(3),
            edge_rows=np.zeros(0, dtype=np.int64),
            edge_cols=np.zeros(0, dtype=np.int64),
            edge_scores=np.zeros(0),
            node_scores=np.array([1.0, 2.0, 3.0]),
        )
        ranking = node_ranking_scores(scores, "max_edge")
        assert ranking.tolist() == [1.0, 2.0, 3.0]

    def test_unknown_mode(self):
        with pytest.raises(EvaluationError):
            node_ranking_scores(_scores(), "median")


class TestSetMetrics:
    def test_basic(self):
        metrics = set_metrics({1, 2, 3}, {2, 3, 4})
        assert metrics.true_positives == 2
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f1 == pytest.approx(2 / 3)

    def test_empty_prediction(self):
        metrics = set_metrics(set(), {1})
        assert metrics.precision == 1.0
        assert metrics.recall == 0.0

    def test_perfect(self):
        metrics = set_metrics({1, 2}, {1, 2})
        assert metrics.f1 == 1.0


class TestTopK:
    def test_precision_at_k(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([0.9, 0.2, 0.8, 0.1])
        assert precision_at_k(labels, scores, 2) == 0.5

    def test_recall_at_k(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([0.9, 0.2, 0.8, 0.1])
        assert recall_at_k(labels, scores, 2) == 0.5

    def test_k_bounds(self):
        labels = np.array([1, 0], dtype=bool)
        with pytest.raises(EvaluationError):
            precision_at_k(labels, np.arange(2.0), 3)

    def test_rank_of_pessimistic_ties(self):
        scores = np.array([3.0, 3.0, 1.0])
        assert rank_of(0, scores) == 2
        assert rank_of(2, scores) == 3

    def test_rank_of_bounds(self):
        with pytest.raises(EvaluationError):
            rank_of(5, np.arange(3.0))


class TestSweeps:
    def _instances(self, count=2):
        from repro.graphs import (
            DynamicGraph, GraphSnapshot, community_pair_graph,
            perturb_weights,
        )

        instances = []
        for seed in range(count):
            base = community_pair_graph(community_size=12, p_in=0.5,
                                        p_out=0.05, seed=seed)
            drifted = perturb_weights(base, 0.02, seed=100 + seed)
            matrix = drifted.adjacency.tolil()
            matrix[0, 23] = matrix[23, 0] = 3.0
            labels = np.zeros(24, dtype=bool)
            labels[[0, 23]] = True
            instances.append((
                DynamicGraph([
                    base, GraphSnapshot(matrix.tocsr(), base.universe),
                ]),
                labels,
            ))
        return instances

    def test_evaluate_detector(self):
        evaluation = evaluate_detector(
            CadDetector(method="exact"), self._instances()
        )
        assert evaluation.detector == "CAD"
        assert evaluation.mean_auc > 0.9
        grid, tpr = evaluation.mean_curve
        assert grid.size == tpr.size

    def test_compare_detectors(self):
        from repro.baselines import AdjDetector

        results = compare_detectors(
            [CadDetector(method="exact"), AdjDetector()],
            self._instances(),
        )
        assert set(results) == {"CAD", "ADJ"}

    def test_sweep_parameter(self):
        results = sweep_parameter(
            lambda k: CadDetector(method="approx", k=k, seed=0),
            [16, 64],
            self._instances(1),
        )
        assert [value for value, _ in results] == [16, 64]
        assert all(e.mean_auc > 0.5 for _, e in results)

    def test_empty_instances_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_detector(CadDetector(), [])


class TestTiming:
    def test_time_callable(self):
        result = time_callable("noop", lambda: sum(range(100)),
                               repeats=3)
        assert result.seconds.shape == (3,)
        assert result.best <= result.mean

    def test_fit_scaling_exponent_linear(self):
        sizes = np.array([100, 200, 400, 800])
        seconds = sizes * 1e-6
        assert fit_scaling_exponent(sizes, seconds) == pytest.approx(
            1.0, abs=0.01
        )

    def test_fit_scaling_exponent_quadratic(self):
        sizes = np.array([100.0, 200, 400])
        seconds = sizes ** 2
        assert fit_scaling_exponent(sizes, seconds) == pytest.approx(2.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_scaling_exponent(np.array([10.0]), np.array([1.0]))
