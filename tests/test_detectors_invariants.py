"""Graph invariants: known values, matrix extraction, change scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import (
    INVARIANT_NAMES,
    InvariantDetector,
    graph_invariants,
    invariant_matrix,
    scan_statistics,
)
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)

F = {name: i for i, name in enumerate(INVARIANT_NAMES)}


def unweighted_triangle():
    adjacency = np.zeros((4, 4))
    for i, j in ((0, 1), (1, 2), (0, 2)):
        adjacency[i, j] = adjacency[j, i] = 1.0
    return GraphSnapshot(adjacency)


class TestScanStatistics:
    def test_triangle_with_isolated_node(self):
        scan = scan_statistics(unweighted_triangle())
        # Each triangle member: 2 incident edges + 1 edge among its
        # neighbours; node 3 is isolated.
        np.testing.assert_allclose(scan, [3.0, 3.0, 3.0, 0.0])

    def test_weights_do_not_change_scan(self, triangle_graph):
        scan = scan_statistics(triangle_graph)
        np.testing.assert_allclose(scan, [3.0, 3.0, 3.0])

    def test_path_graph(self, path_graph):
        # No triangles: scan reduces to the degree.
        np.testing.assert_allclose(scan_statistics(path_graph),
                                   [1.0, 2.0, 2.0, 1.0])


class TestGraphInvariants:
    def test_triangle_values(self):
        vector = graph_invariants(unweighted_triangle())
        assert vector.shape == (len(INVARIANT_NAMES),)
        assert vector[F["size"]] == 3.0
        assert vector[F["volume"]] == pytest.approx(6.0)
        assert vector[F["max_degree"]] == pytest.approx(2.0)
        assert vector[F["scan_stat"]] == pytest.approx(3.0)
        assert vector[F["triangles"]] == pytest.approx(1.0)
        # Eigenvalues 2, 0 (the isolated node), -1, -1 -> gap 2.
        assert vector[F["spectral_gap"]] == pytest.approx(2.0)

    def test_empty_graph(self):
        vector = graph_invariants(GraphSnapshot(np.zeros((4, 4))))
        np.testing.assert_allclose(vector, np.zeros(len(INVARIANT_NAMES)))

    def test_single_node(self):
        vector = graph_invariants(GraphSnapshot(np.zeros((1, 1))))
        assert np.all(np.isfinite(vector))
        assert vector[F["spectral_gap"]] == 0.0

    def test_matrix_shape_and_rows(self, small_dynamic_graph):
        matrix = invariant_matrix(small_dynamic_graph)
        assert matrix.shape == (2, len(INVARIANT_NAMES))
        np.testing.assert_allclose(
            matrix[0], graph_invariants(small_dynamic_graph[0])
        )
        assert np.all(np.isfinite(matrix))


class TestInvariantDetector:
    def make_sequence(self, steps=8, hit=5, seed=21):
        hit = min(hit, steps - 1)
        base = community_pair_graph(community_size=10, p_in=0.5,
                                    p_out=0.05, seed=seed)
        snapshots = [base]
        for t in range(1, steps):
            snapshots.append(perturb_weights(snapshots[-1],
                                             relative_noise=0.02,
                                             seed=seed + t))
        matrix = snapshots[hit].adjacency.tolil()
        for offset in range(4):
            i, j = offset, 19 - offset
            matrix[i, j] = matrix[j, i] = 6.0
        snapshots[hit] = GraphSnapshot(matrix.tocsr(), base.universe)
        return DynamicGraph(snapshots)

    def test_event_peaks_at_injected_transition(self):
        graph = self.make_sequence(hit=5)
        scored = InvariantDetector().score_sequence(graph)
        events = [float(s.extras["event_score"][0]) for s in scored]
        assert int(np.argmax(events)) == 4
        assert all(np.isfinite(e) for e in events)

    def test_extras_carry_feature_breakdown(self, small_dynamic_graph):
        scored = InvariantDetector().score_sequence(small_dynamic_graph)
        extras = scored[0].extras
        for key in ("invariants", "deltas", "scaled_deltas"):
            assert extras[key].shape == (len(INVARIANT_NAMES),)

    def test_node_scores_are_scan_changes(self, small_dynamic_graph):
        scored = InvariantDetector().score_sequence(small_dynamic_graph)
        expected = np.abs(
            scan_statistics(small_dynamic_graph[1])
            - scan_statistics(small_dynamic_graph[0])
        )
        np.testing.assert_allclose(scored[0].node_scores, expected)

    def test_seed_is_ignored(self):
        graph = self.make_sequence(steps=5)
        a = InvariantDetector(seed=1).score_sequence(graph)
        b = InvariantDetector(seed=2).score_sequence(graph)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left.extras["event_score"],
                                          right.extras["event_score"])

    def test_scaled_deviation_fallbacks(self):
        scaled = InvariantDetector._scaled_deviation
        # No history: relative to the invariant's own level.
        assert scaled(4.0, np.zeros(0), 2.0) == pytest.approx(2.0)
        assert scaled(4.0, np.zeros(0), 0.5) == pytest.approx(4.0)
        # Enough history: MAD scaling around the median delta.
        history = np.array([1.0, 1.2, 0.8, 1.0, 1.1])
        assert scaled(1.0, history, 100.0) == pytest.approx(0.0)
        assert scaled(5.0, history, 100.0) > 5.0

    def test_streaming_state_round_trip(self):
        graph = self.make_sequence(steps=7)
        snapshots = list(graph)
        left, right = InvariantDetector(), InvariantDetector()
        for g_t, g_t1 in zip(snapshots[:4], snapshots[1:5]):
            left.score_transition(g_t, g_t1)
        right.load_streaming_state(left.streaming_state())
        for g_t, g_t1 in zip(snapshots[4:6], snapshots[5:7]):
            a = left.score_transition(g_t, g_t1)
            b = right.score_transition(g_t, g_t1)
            np.testing.assert_array_equal(a.extras["event_score"],
                                          b.extras["event_score"])
            np.testing.assert_array_equal(a.node_scores, b.node_scores)

    def test_fresh_detector_state_round_trip(self):
        detector = InvariantDetector()
        restored = InvariantDetector()
        restored.load_streaming_state(detector.streaming_state())
        assert restored._history == []
        assert restored._last_scan is None
