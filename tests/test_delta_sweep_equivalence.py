"""The δ-sweep / max-edge-ranking equivalence claim, tested.

The evaluation harness ranks nodes by their maximum incident edge
score and calls that "the ordering a δ-sweep of Algorithm 1 induces"
(see :func:`repro.evaluation.metrics.node_ranking_scores`). This test
verifies the claim literally: sweeping δ downward and recording the
order in which nodes first enter ``V_t`` must reproduce the max-edge
ranking (up to ties).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import CadDetector, anomaly_sets_at
from repro.core.results import TransitionScores
from repro.evaluation import node_ranking_scores
from repro.graphs import NodeUniverse


@st.composite
def random_transition_scores(draw):
    num_nodes = draw(st.integers(min_value=4, max_value=12))
    universe = NodeUniverse.of_size(num_nodes)
    num_edges = draw(st.integers(min_value=1, max_value=16))
    pairs = set()
    for _ in range(num_edges):
        i = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        j = draw(st.integers(min_value=i + 1, max_value=num_nodes - 1))
        pairs.add((i, j))
    pairs = sorted(pairs)
    rows = np.array([p[0] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs], dtype=np.int64)
    # distinct scores avoid tie ambiguity in the sweep ordering
    base = draw(st.lists(
        st.floats(min_value=0.01, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=len(pairs), max_size=len(pairs),
    ))
    scores = np.sort(np.unique(np.asarray(base)))
    while scores.size < len(pairs):
        scores = np.concatenate((scores, scores[-1:] * 1.7 + 1.0))
    rng_order = np.argsort(np.asarray(base[:len(pairs)]))
    edge_scores = np.empty(len(pairs))
    edge_scores[rng_order] = scores[:len(pairs)]

    from repro.core import aggregate_node_scores

    return TransitionScores(
        universe=universe,
        edge_rows=rows,
        edge_cols=cols,
        edge_scores=edge_scores,
        node_scores=aggregate_node_scores(num_nodes, rows, cols,
                                          edge_scores),
        detector="test",
    )


def _delta_sweep_entry_order(scores: TransitionScores) -> list[int]:
    """Nodes in the order they first appear in V_t as δ shrinks."""
    thresholds = np.sort(np.unique(scores.edge_scores))[::-1]
    seen: list[int] = []
    total = scores.total_edge_score()
    # sweep δ through every residual breakpoint
    candidate_deltas = []
    order = np.argsort(-scores.edge_scores)
    residual = total
    for position in order:
        candidate_deltas.append(residual)  # just above: edge excluded
        residual -= scores.edge_scores[position]
    candidate_deltas.append(max(residual, 1e-12))
    for delta in candidate_deltas:
        delta = max(delta * (1.0 - 1e-12), 1e-15)
        _mask, nodes, _ns = anomaly_sets_at(scores, delta)
        for node in nodes:
            if int(node) not in seen:
                seen.append(int(node))
    return seen


class TestDeltaSweepEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_transition_scores())
    def test_entry_order_matches_max_edge_ranking(self, scores):
        sweep_order = _delta_sweep_entry_order(scores)
        ranking = node_ranking_scores(scores, "max_edge")
        for earlier, later in zip(sweep_order, sweep_order[1:]):
            assert ranking[earlier] >= ranking[later]

    def test_on_real_transition(self, small_dynamic_graph):
        scores = CadDetector(method="exact").score_sequence(
            small_dynamic_graph
        )[0]
        sweep_order = _delta_sweep_entry_order(scores)
        ranking = node_ranking_scores(scores, "max_edge")
        values = [ranking[node] for node in sweep_order]
        assert values == sorted(values, reverse=True)
        # and the injected endpoints enter first
        assert set(sweep_order[:2]) == {0, 39}
