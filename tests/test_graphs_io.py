"""Unit tests for graph IO round-trips."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    DynamicGraph,
    NodeUniverse,
    read_json,
    read_npz,
    read_temporal_edge_csv,
    snapshot_from_edges,
    write_json,
    write_npz,
    write_temporal_edge_csv,
)


@pytest.fixture
def sample_graph() -> DynamicGraph:
    universe = NodeUniverse(["a", "b", "c"])
    first = snapshot_from_edges(
        [("a", "b", 1.5), ("b", "c", 2.0)], universe, time="jan"
    )
    second = snapshot_from_edges(
        [("a", "b", 0.5), ("a", "c", 3.0)], universe, time="feb"
    )
    return DynamicGraph([first, second])


def _assert_equivalent(a: DynamicGraph, b: DynamicGraph) -> None:
    assert len(a) == len(b)
    assert ([str(node) for node in a.universe]
            == [str(node) for node in b.universe])
    for s1, s2 in zip(a, b):
        np.testing.assert_allclose(
            s1.adjacency.toarray(), s2.adjacency.toarray()
        )


class TestCsv:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.csv"
        write_temporal_edge_csv(sample_graph, path)
        loaded = read_temporal_edge_csv(path)
        _assert_equivalent(sample_graph, loaded)
        assert loaded[0].time == "jan"

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,a,b,2.0\n")
        with pytest.raises(GraphConstructionError, match="header"):
            read_temporal_edge_csv(path)

    def test_bad_weight(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,source,target,weight\n1,a,b,oops\n")
        with pytest.raises(GraphConstructionError, match="weight"):
            read_temporal_edge_csv(path)

    def test_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,source,target,weight\n1,a,b\n")
        with pytest.raises(GraphConstructionError, match="columns"):
            read_temporal_edge_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,source,target,weight\n")
        with pytest.raises(GraphConstructionError, match="no edges"):
            read_temporal_edge_csv(path)

    def test_weight_precision_preserved(self, tmp_path):
        universe = NodeUniverse(["a", "b"])
        weight = 0.1234567890123456
        graph = DynamicGraph(
            [snapshot_from_edges([("a", "b", weight)], universe, time=0)]
        )
        path = tmp_path / "precise.csv"
        write_temporal_edge_csv(graph, path)
        loaded = read_temporal_edge_csv(path)
        assert loaded[0].weight("a", "b") == weight


class TestJson:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_json(sample_graph, path)
        loaded = read_json(path)
        _assert_equivalent(sample_graph, loaded)
        assert loaded[1].time == "feb"

    def test_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphConstructionError):
            read_json(path)


class TestNpz:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.npz"
        write_npz(sample_graph, path)
        loaded = read_npz(path)
        _assert_equivalent(sample_graph, loaded)
        assert loaded[0].time == "jan"

    def test_none_time_round_trip(self, tmp_path):
        universe = NodeUniverse(["a", "b"])
        graph = DynamicGraph(
            [snapshot_from_edges([("a", "b", 1.0)], universe)]
        )
        path = tmp_path / "g.npz"
        write_npz(graph, path)
        assert read_npz(path)[0].time is None
