"""Unit tests for the pipeline API and report rendering."""

import numpy as np
import pytest

from repro.core import CadDetector
from repro.baselines import ClcDetector
from repro.exceptions import DetectionError
from repro.pipeline import (
    DETECTOR_FACTORIES,
    detect,
    make_detector,
    render_bar_chart,
    render_series,
    render_table,
)


class TestMakeDetector:
    def test_all_registered_names(self):
        for name in DETECTOR_FACTORIES:
            detector = make_detector(name)
            assert detector.name.lower() == name

    def test_case_insensitive(self):
        assert make_detector("CAD").name == "CAD"

    def test_kwargs_forwarded(self):
        detector = make_detector("act", window=5)
        assert detector.window == 5

    def test_unknown_name(self):
        with pytest.raises(DetectionError):
            make_detector("oracle")


class TestDetect:
    def test_cad_by_name(self, small_dynamic_graph):
        report = detect(small_dynamic_graph, detector="cad",
                        anomalies_per_transition=2, method="exact")
        assert report.detector == "CAD"
        assert report.transitions[0].is_anomalous

    def test_detector_instance(self, small_dynamic_graph):
        report = detect(small_dynamic_graph,
                        detector=CadDetector(method="exact"),
                        anomalies_per_transition=2)
        assert report.detector == "CAD"

    def test_instance_with_kwargs_rejected(self, small_dynamic_graph):
        with pytest.raises(DetectionError):
            detect(small_dynamic_graph, detector=CadDetector(),
                   method="exact")

    def test_act_routing(self, small_dynamic_graph):
        report = detect(small_dynamic_graph, detector="act",
                        anomalies_per_transition=3)
        assert report.detector == "ACT"

    def test_node_only_policy(self, small_dynamic_graph):
        report = detect(small_dynamic_graph,
                        detector=ClcDetector(),
                        anomalies_per_transition=2)
        assert report.detector == "CLC"
        # single transition: peak equals the median, nothing flagged or
        # everything — either way the report is well-formed
        assert len(report.transitions) == 1

    def test_adj_thresholded_like_cad(self, small_dynamic_graph):
        report = detect(small_dynamic_graph, detector="adj",
                        anomalies_per_transition=2)
        assert report.detector == "ADJ"
        assert report.threshold > 0

    def test_explicit_delta(self, small_dynamic_graph):
        report = detect(small_dynamic_graph, detector="cad",
                        delta=1e-9, method="exact")
        assert report.threshold == 1e-9


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ("name", "value"),
            [("alpha", 1.0), ("b", 22.5)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = render_table(("x",), [(0.123456789,)],
                            float_format="{:.2f}")
        assert "0.12" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert "a" in text


class TestRenderSeries:
    def test_one_line_per_point(self):
        text = render_series("auc", [1, 2], [0.5, 0.6])
        assert text.count("\n") == 2
        assert "0.5" in text


class TestRenderBarChart:
    def test_bars_scale(self):
        text = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_zero_values(self):
        text = render_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_title(self):
        text = render_bar_chart(["a"], [1.0], title="counts")
        assert text.splitlines()[0] == "counts"
