"""Unit tests for graph operations (components, diffs, Dijkstra, CLC)."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    GraphSnapshot,
    adjacency_difference,
    closeness_centrality,
    connected_components,
    is_connected,
    single_source_distances,
    subgraph,
    union_support,
)


class TestConnectedComponents:
    def test_connected(self, path_graph):
        count, labels = connected_components(path_graph.adjacency)
        assert count == 1
        assert set(labels) == {0}

    def test_disconnected(self, disconnected_graph):
        count, labels = connected_components(disconnected_graph.adjacency)
        assert count == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_nodes(self):
        snapshot = GraphSnapshot(np.zeros((3, 3)))
        count, _ = connected_components(snapshot.adjacency)
        assert count == 3

    def test_is_connected(self, path_graph, disconnected_graph):
        assert is_connected(path_graph)
        assert not is_connected(disconnected_graph)

    def test_matches_scipy(self, random_connected_graph):
        from scipy.sparse.csgraph import connected_components as scipy_cc

        ours, our_labels = connected_components(
            random_connected_graph.adjacency
        )
        theirs, their_labels = scipy_cc(
            random_connected_graph.adjacency, directed=False
        )
        assert ours == theirs
        # Same partition up to relabelling.
        mapping = {}
        for a, b in zip(our_labels, their_labels):
            assert mapping.setdefault(a, b) == b


class TestAdjacencyDifference:
    def test_union_of_supports(self, path_graph):
        changed = np.zeros((4, 4))
        changed[0, 1] = changed[1, 0] = 1.0  # unchanged edge
        changed[2, 3] = changed[3, 2] = 5.0  # new edge
        other = GraphSnapshot(changed, path_graph.universe)
        diff = adjacency_difference(path_graph, other)
        assert diff[1, 2] == 1.0  # deleted edge keeps its magnitude
        assert diff[2, 3] == 4.0
        assert diff[0, 1] == 0.0

    def test_zero_for_identical(self, path_graph):
        diff = adjacency_difference(path_graph, path_graph)
        assert diff.nnz == 0


class TestUnionSupport:
    def test_covers_both(self, path_graph):
        changed = np.zeros((4, 4))
        changed[0, 3] = changed[3, 0] = 1.0
        other = GraphSnapshot(changed, path_graph.universe)
        rows, cols = union_support(path_graph, other)
        pairs = set(zip(rows.tolist(), cols.tolist()))
        assert pairs == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_strictly_upper(self, small_dynamic_graph):
        rows, cols = union_support(small_dynamic_graph[0],
                                   small_dynamic_graph[1])
        assert np.all(rows < cols)


class TestSubgraph:
    def test_induced(self, triangle_graph):
        induced = subgraph(triangle_graph, [0, 2])
        assert induced.num_nodes == 2
        assert induced.weight(0, 2) == 2.0

    def test_empty_selection_raises(self, triangle_graph):
        with pytest.raises(GraphConstructionError):
            subgraph(triangle_graph, [])


class TestDijkstra:
    def test_path_costs_inverse_weights(self, path_graph):
        distances = single_source_distances(path_graph.adjacency, 0)
        assert distances.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_weighted(self):
        adjacency = np.array([
            [0.0, 2.0, 0.0],
            [2.0, 0.0, 4.0],
            [0.0, 4.0, 0.0],
        ])
        snapshot = GraphSnapshot(adjacency)
        distances = single_source_distances(snapshot.adjacency, 0)
        assert distances[1] == pytest.approx(0.5)
        assert distances[2] == pytest.approx(0.75)

    def test_costs_direct(self, path_graph):
        distances = single_source_distances(
            path_graph.adjacency, 0, weights_are_similarities=False
        )
        assert distances[3] == pytest.approx(3.0)

    def test_unreachable_inf(self, disconnected_graph):
        distances = single_source_distances(disconnected_graph.adjacency, 0)
        assert np.isinf(distances[2])
        assert np.isinf(distances[3])

    def test_bad_source_raises(self, path_graph):
        with pytest.raises(GraphConstructionError):
            single_source_distances(path_graph.adjacency, 9)

    def test_matches_scipy(self, random_connected_graph):
        from scipy.sparse.csgraph import dijkstra

        adjacency = random_connected_graph.adjacency
        costs = adjacency.copy()
        costs.data = 1.0 / costs.data
        expected = dijkstra(costs, directed=False, indices=0)
        actual = single_source_distances(adjacency, 0)
        np.testing.assert_allclose(actual, expected, rtol=1e-10)


class TestClosenessCentrality:
    def test_star_center_highest(self):
        star = np.zeros((5, 5))
        star[0, 1:] = star[1:, 0] = 1.0
        snapshot = GraphSnapshot(star)
        scores = closeness_centrality(snapshot)
        assert np.argmax(scores) == 0

    def test_matches_networkx(self, random_connected_graph):
        networkx = pytest.importorskip("networkx")
        adjacency = random_connected_graph.adjacency.toarray()
        graph = networkx.Graph()
        n = adjacency.shape[0]
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if adjacency[i, j] > 0:
                    graph.add_edge(i, j, cost=1.0 / adjacency[i, j])
        expected = networkx.closeness_centrality(graph, distance="cost")
        actual = closeness_centrality(random_connected_graph)
        for i in range(n):
            assert actual[i] == pytest.approx(expected[i], rel=1e-9)

    def test_isolated_nodes_zero(self):
        snapshot = GraphSnapshot(np.zeros((3, 3)))
        assert closeness_centrality(snapshot).tolist() == [0.0, 0.0, 0.0]

    def test_single_node(self):
        snapshot = GraphSnapshot(np.zeros((1, 1)))
        assert closeness_centrality(snapshot).tolist() == [0.0]
