"""Error-hierarchy contract and detector-registry completeness."""

import pytest

import repro
from repro import exceptions
from repro.pipeline import DETECTOR_FACTORIES, detect, make_detector


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "GraphConstructionError", "NodeUniverseMismatchError",
        "SolverError", "ConvergenceError", "EmbeddingError",
        "DetectionError", "ThresholdError", "DatasetError",
        "EvaluationError",
    ])
    def test_all_catchable_as_repro_error(self, name):
        error_type = getattr(exceptions, name)
        assert issubclass(error_type, exceptions.ReproError)

    def test_convergence_is_solver_error(self):
        assert issubclass(exceptions.ConvergenceError,
                          exceptions.SolverError)

    def test_mismatch_is_construction_error(self):
        assert issubclass(exceptions.NodeUniverseMismatchError,
                          exceptions.GraphConstructionError)

    def test_library_failure_caught_by_base(self):
        with pytest.raises(repro.ReproError):
            repro.NodeUniverse([])


class TestRegistryCompleteness:
    def test_every_paper_method_registered(self):
        assert {"cad", "act", "adj", "com", "clc"} <= set(
            DETECTOR_FACTORIES
        )

    @pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
    def test_all_detectors_run_end_to_end(self, name,
                                          small_dynamic_graph):
        report = detect(small_dynamic_graph, detector=name,
                        anomalies_per_transition=2)
        assert report.detector == make_detector(name).name
        assert len(report.transitions) == 1

    def test_public_api_surface(self):
        """The documented top-level names resolve."""
        for name in ("CadDetector", "StreamingCadDetector",
                     "GenericDistanceDetector", "detect",
                     "toy_example", "explain_node", "sparsify",
                     "IncrementalPseudoinverse"):
            assert hasattr(repro, name), name
        assert repro.__version__
