"""Wire-protocol serde of the detection service."""

from __future__ import annotations

import pytest

from repro.core.commute import DEFAULT_EXACT_LIMIT
from repro.service import BadRequestError, SessionConfig, parse_session_config
from repro.service.protocol import snapshot_documents


class TestParseSessionConfig:
    def test_defaults(self):
        config = parse_session_config({})
        assert config == SessionConfig()
        assert config.anomalies_per_transition == 5
        assert config.warmup == 3
        assert config.sanitize is None
        assert config.incremental is False
        assert config.exact_limit == DEFAULT_EXACT_LIMIT

    def test_none_body_means_defaults(self):
        assert parse_session_config(None) == SessionConfig()

    def test_full_round_trip(self):
        document = {
            "anomalies_per_transition": 2,
            "warmup": 4,
            "sanitize": "quarantine",
            "incremental": True,
            "method": "exact",
            "k": 25,
            "seed": 7,
            "solver": "fallback",
            "exact_limit": 500,
            "seed_mode": "content",
        }
        config = parse_session_config(document)
        assert config.to_document() == document
        # the parsed config reconstructs the exact detector arguments
        kwargs = config.detector_kwargs()
        assert kwargs["seed"] == 7
        assert kwargs["sanitize"] == "quarantine"
        assert kwargs["incremental"] is True

    def test_rejects_non_object(self):
        with pytest.raises(BadRequestError, match="JSON object"):
            parse_session_config([1, 2])

    def test_rejects_unknown_keys(self):
        with pytest.raises(BadRequestError, match="unknown session"):
            parse_session_config({"warmupp": 3})

    @pytest.mark.parametrize("document", [
        {"anomalies_per_transition": 0},
        {"warmup": "three"},
        {"k": -1},
        {"seed": 1.5},
        {"sanitize": "ignore"},
        {"method": "magic"},
        {"seed_mode": "dice"},
        {"solver": "gmres"},
        {"incremental": "yes"},
        {"exact_limit": 0},
    ])
    def test_rejects_bad_values(self, document):
        with pytest.raises(BadRequestError):
            parse_session_config(document)

    def test_boolean_is_not_an_integer(self):
        with pytest.raises(BadRequestError, match="warmup"):
            parse_session_config({"warmup": True})


class TestSnapshotDocuments:
    def test_single_payload_passthrough(self):
        payload = {"edges": [], "nodes": ["a"]}
        assert snapshot_documents(payload) == [payload]

    def test_batch_unwraps(self):
        first = {"edges": [["a", "b", 1.0]]}
        second = {"edges": []}
        assert snapshot_documents(
            {"snapshots": [first, second]}
        ) == [first, second]

    @pytest.mark.parametrize("body", [
        None,
        "payload",
        {"snapshots": []},
        {"snapshots": "nope"},
        {"snapshots": [{"edges": []}, 3]},
    ])
    def test_rejects_malformed_bodies(self, body):
        with pytest.raises(BadRequestError):
            snapshot_documents(body)
