"""Unit tests for report JSON serialisation."""

import json

import pytest

from repro.core import CadDetector
from repro.exceptions import DetectionError
from repro.pipeline import (
    read_report_json,
    report_to_dict,
    write_report_json,
)


@pytest.fixture
def report(small_dynamic_graph):
    return CadDetector(method="exact").detect(
        small_dynamic_graph, anomalies_per_transition=2
    )


class TestReportToDict:
    def test_structure(self, report):
        document = report_to_dict(report)
        assert document["format"] == "repro-detection-report"
        assert document["detector"] == "CAD"
        assert len(document["transitions"]) == 1
        transition = document["transitions"][0]
        assert transition["anomalous"] is True
        assert {"source", "target", "score"} <= set(
            transition["edges"][0]
        )

    def test_node_scores_optional(self, report):
        without = report_to_dict(report)
        with_scores = report_to_dict(report, include_scores=True)
        assert "node_scores" not in without["transitions"][0]
        assert len(with_scores["transitions"][0]["node_scores"]) == 40

    def test_json_safe(self, report):
        json.dumps(report_to_dict(report, include_scores=True))


class TestRoundTrip:
    def test_write_read(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report_json(report, path)
        document = read_report_json(path)
        assert document["threshold"] == pytest.approx(report.threshold)
        nodes = document["transitions"][0]["nodes"]
        assert set(nodes[:2]) == {0, 39}

    def test_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something"}')
        with pytest.raises(DetectionError):
            read_report_json(path)

    def test_rejects_future_version(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report_json(report, path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(DetectionError):
            read_report_json(path)
