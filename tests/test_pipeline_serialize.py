"""Unit tests for report JSON serialisation."""

import json

import pytest

from repro.core import CadDetector
from repro.exceptions import DetectionError
from repro.pipeline import (
    read_report_json,
    report_to_dict,
    write_report_json,
)


@pytest.fixture
def report(small_dynamic_graph):
    return CadDetector(method="exact").detect(
        small_dynamic_graph, anomalies_per_transition=2
    )


class TestReportToDict:
    def test_structure(self, report):
        document = report_to_dict(report)
        assert document["format"] == "repro-detection-report"
        assert document["detector"] == "CAD"
        assert len(document["transitions"]) == 1
        transition = document["transitions"][0]
        assert transition["anomalous"] is True
        assert {"source", "target", "score"} <= set(
            transition["edges"][0]
        )

    def test_node_scores_optional(self, report):
        without = report_to_dict(report)
        with_scores = report_to_dict(report, include_scores=True)
        assert "node_scores" not in without["transitions"][0]
        assert len(with_scores["transitions"][0]["node_scores"]) == 40

    def test_json_safe(self, report):
        json.dumps(report_to_dict(report, include_scores=True))


class TestRoundTrip:
    def test_write_read(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report_json(report, path)
        document = read_report_json(path)
        assert document["threshold"] == pytest.approx(report.threshold)
        nodes = document["transitions"][0]["nodes"]
        assert set(nodes[:2]) == {0, 39}

    def test_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something"}')
        with pytest.raises(DetectionError):
            read_report_json(path)

    def test_rejects_future_version(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report_json(report, path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(DetectionError):
            read_report_json(path)


# -- snapshot payloads (the service wire format) -----------------------------


import numpy as np  # noqa: E402
import scipy.sparse as sp  # noqa: E402

from repro.graphs.snapshot import GraphSnapshot, NodeUniverse  # noqa: E402
from repro.pipeline.serialize import (  # noqa: E402
    raw_snapshot_from_payload,
    snapshot_from_payload,
    snapshot_to_payload,
)


def _snapshot(edges, labels, time=None):
    universe = NodeUniverse(labels)
    matrix = np.zeros((len(labels), len(labels)))
    for u, v, w in edges:
        i, j = universe.index_of(u), universe.index_of(v)
        matrix[i, j] = matrix[j, i] = w
    return GraphSnapshot(sp.csr_matrix(matrix), universe, time=time)


class TestSnapshotPayloadRoundTrip:
    def test_basic_round_trip(self):
        snapshot = _snapshot(
            [("a", "b", 1.5), ("b", "c", 2.0)], ["a", "b", "c"], time=4
        )
        back = snapshot_from_payload(snapshot_to_payload(snapshot))
        assert back.universe == snapshot.universe
        assert back.time == 4
        assert (back.adjacency != snapshot.adjacency).nnz == 0

    def test_empty_edge_snapshot_round_trips(self):
        """Regression: a silent month must keep its full universe."""
        snapshot = _snapshot([], ["a", "b", "c"], time="2001-07")
        payload = snapshot_to_payload(snapshot)
        assert payload["edges"] == []
        assert payload["nodes"] == ["a", "b", "c"]
        back = snapshot_from_payload(payload)
        assert back.universe == snapshot.universe
        assert back.num_edges == 0
        assert back.time == "2001-07"

    def test_non_contiguous_activity_round_trips(self):
        """Regression: nodes untouched by any edge must survive."""
        snapshot = _snapshot(
            [("a", "d", 1.0)], ["a", "b", "c", "d", "e"]
        )
        back = snapshot_from_payload(snapshot_to_payload(snapshot))
        assert list(back.universe) == ["a", "b", "c", "d", "e"]
        assert back.weight("a", "d") == 1.0
        assert back.neighbors("b") == []

    def test_empty_payload_without_nodes_rejected(self):
        with pytest.raises(DetectionError, match="universe"):
            snapshot_from_payload({"edges": []})

    def test_session_universe_fills_missing_nodes(self):
        universe = NodeUniverse(["a", "b", "c"])
        back = snapshot_from_payload(
            {"edges": [["a", "b", 2.0]]}, universe
        )
        assert back.universe == universe

    def test_declared_universe_must_match_sessions(self):
        universe = NodeUniverse(["a", "b", "c"])
        with pytest.raises(DetectionError, match="does not match"):
            snapshot_from_payload(
                {"edges": [], "nodes": ["a", "b"]}, universe
            )

    def test_csr_payload_with_declared_universe(self):
        snapshot = _snapshot([("a", "b", 3.0)], ["a", "b", "c"])
        adjacency = snapshot.adjacency
        payload = {
            "nodes": ["a", "b", "c"],
            "csr": {
                "data": adjacency.data.tolist(),
                "indices": adjacency.indices.tolist(),
                "indptr": adjacency.indptr.tolist(),
            },
        }
        back = snapshot_from_payload(payload)
        assert back.weight("a", "b") == 3.0

    def test_csr_payload_implies_integer_universe(self):
        payload = {
            "csr": {"data": [1.0, 1.0], "indices": [1, 0],
                    "indptr": [0, 1, 2, 2]},
        }
        back = snapshot_from_payload(payload)
        assert list(back.universe) == [0, 1, 2]

    @pytest.mark.parametrize("payload", [
        {"edges": [], "csr": {"data": [], "indices": [], "indptr": [0]}},
        {"nodes": ["a", "b"]},
        {"nodes": ["a", "a"], "edges": []},
        {"nodes": ["a", "b"], "edges": [["a", "b"]]},
        {"nodes": ["a", "b"], "edges": [["a", "z", 1.0]]},
        {"nodes": ["a", "b"], "edges": [["a", "b", "heavy"]]},
        {"nodes": ["a", "b"],
         "csr": {"data": [1.0], "indices": [5], "indptr": [0, 1, 1]}},
        {"nodes": ["a", "b"],
         "csr": {"data": [1.0], "indices": [0], "indptr": [0, 1]}},
        {"format": "something", "edges": [], "nodes": ["a"]},
        "not-a-payload",
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(DetectionError):
            snapshot_from_payload(payload)

    def test_raw_payload_keeps_dirt_for_sanitization(self):
        payload = {
            "nodes": ["a", "b"],
            "edges": [["a", "a", 5.0], ["a", "b", -1.0]],
        }
        matrix, universe, time = raw_snapshot_from_payload(payload)
        assert matrix[0, 0] == 5.0  # self-loop preserved
        assert matrix[0, 1] == -1.0  # negative weight preserved
        assert list(universe) == ["a", "b"]
        assert time is None
        with pytest.raises(DetectionError):
            snapshot_from_payload(payload)
