"""Mechanics of the parallel execution engine: shared memory, shard
planning, merging, crash handling, checkpoints, and the pipeline/CLI
entry points. Determinism guarantees live in
``tests/test_parallel_determinism.py``."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CadDetector,
    DynamicGraph,
    ParallelCadDetector,
    ParallelExecutionError,
    ReproError,
    detect,
)
from repro.cli import main as cli_main
from repro.exceptions import CheckpointError
from repro.graphs import random_sparse_graph, perturb_weights
from repro.graphs.io import write_temporal_edge_csv
from repro.parallel import (
    AttachedGraphSequence,
    SharedGraphSequence,
    plan_component_shards,
    plan_transition_chunks,
    resolve_shard_mode,
)
from repro.parallel.checkpoint import (
    read_parallel_checkpoint,
    sequence_fingerprint,
    write_parallel_checkpoint,
)
from repro.pipeline.api import WORKERS_ENV_VAR


def make_sequence(num_snapshots=4, n=30, seed=3) -> DynamicGraph:
    snapshot = random_sparse_graph(n, mean_degree=3.0, seed=seed,
                                   connected=True)
    snapshots = [snapshot]
    for step in range(num_snapshots - 1):
        snapshots.append(perturb_weights(
            snapshots[-1], relative_noise=0.1, seed=seed + step + 1,
        ))
    return DynamicGraph(snapshots)


def disconnected_sequence(num_snapshots=3, blocks=3, block_size=8,
                          seed=0) -> DynamicGraph:
    rng = np.random.default_rng(seed)
    n = blocks * block_size
    matrices = []
    for _ in range(num_snapshots):
        full = np.zeros((n, n))
        for b in range(blocks):
            band = (rng.random((block_size, block_size)) < 0.5)
            band = np.triu(band, 1).astype(float)
            sl = slice(b * block_size, (b + 1) * block_size)
            full[sl, sl] = band + band.T
        matrices.append(full)
    return DynamicGraph.from_adjacencies(matrices)


# -- shared memory ----------------------------------------------------------


def test_shared_sequence_roundtrip(small_dynamic_graph):
    store = SharedGraphSequence.publish(small_dynamic_graph)
    try:
        attached = AttachedGraphSequence(store.spec)
        assert len(attached.matrices) == len(small_dynamic_graph)
        # Copy out of the views before closing: a live view would pin
        # the mapping and close() must be able to drop it.
        dense = [matrix.toarray() for matrix in attached.matrices]
        for original, copied in zip(small_dynamic_graph, dense):
            assert np.array_equal(original.adjacency.toarray(), copied)
        assert attached.times == list(small_dynamic_graph.times)
        attached.close()
    finally:
        store.cleanup()


def test_shared_sequence_cleanup_is_idempotent(small_dynamic_graph):
    store = SharedGraphSequence.publish(small_dynamic_graph)
    store.cleanup()
    store.cleanup()
    with pytest.raises(ParallelExecutionError):
        AttachedGraphSequence(store.spec)


def test_shared_sequence_preserves_time_labels():
    graph = DynamicGraph.from_adjacencies(
        [np.eye(3) * 0, np.eye(3) * 0], times=["jan", "feb"],
    )
    store = SharedGraphSequence.publish(graph)
    try:
        attached = AttachedGraphSequence(store.spec)
        assert attached.times == ["jan", "feb"]
        attached.close()
    finally:
        store.cleanup()


# -- shard planning ---------------------------------------------------------


def test_transition_chunks_are_contiguous_and_complete():
    chunks = plan_transition_chunks(range(10), workers=3)
    covered = [t for chunk in chunks for t in chunk]
    assert covered == list(range(10))
    for chunk in chunks:
        assert list(chunk) == list(range(chunk[0], chunk[-1] + 1))


def test_transition_chunks_split_at_gaps():
    chunks = plan_transition_chunks([0, 1, 4, 5, 6], workers=1)
    assert all(
        list(chunk) == list(range(chunk[0], chunk[-1] + 1))
        for chunk in chunks
    )
    assert sorted(t for c in chunks for t in c) == [0, 1, 4, 5, 6]


def test_component_shards_partition_union_support():
    graph = disconnected_sequence()
    shards, canonical = plan_component_shards(graph)
    for transition in range(graph.num_transitions):
        rows, _cols = canonical[transition]
        positions = np.concatenate([
            shard.positions for shard in shards
            if shard.transition == transition
        ]) if rows.size else np.zeros(0, dtype=np.int64)
        assert sorted(positions.tolist()) == list(range(rows.size))


def test_resolve_shard_mode_auto():
    connected = make_sequence()
    disconnected = disconnected_sequence()
    assert resolve_shard_mode("auto", "exact", connected) == "transition"
    assert resolve_shard_mode("auto", "exact", disconnected) == "component"
    assert resolve_shard_mode("auto", "approx", disconnected) == "transition"
    assert resolve_shard_mode("transition", "exact", disconnected) == \
        "transition"
    with pytest.raises(ParallelExecutionError):
        resolve_shard_mode("bogus", "exact", connected)


def test_component_mode_rejects_approx_backend():
    graph = disconnected_sequence()
    detector = ParallelCadDetector(workers=2, shard_by="component",
                                   method="approx", k=8, seed=1)
    with pytest.raises(ParallelExecutionError):
        detector.score_sequence(graph)


# -- failure handling -------------------------------------------------------


def test_worker_crash_raises_parallel_execution_error():
    graph = make_sequence()
    detector = ParallelCadDetector(
        workers=2, shard_by="transition", seed=1,
        _crash_transitions=(1,),
    )
    with pytest.raises(ParallelExecutionError):
        detector.detect(graph, anomalies_per_transition=3)


def test_parallel_execution_error_is_repro_error():
    # The CLI's 0/1/2 exit-code contract hinges on this subclassing.
    assert issubclass(ParallelExecutionError, ReproError)


def test_invalid_worker_count_rejected():
    with pytest.raises(ParallelExecutionError):
        ParallelCadDetector(workers=0)


# -- checkpointing ----------------------------------------------------------


def test_checkpoint_roundtrip_and_fingerprint_guard(tmp_path):
    graph = make_sequence()
    other = make_sequence(seed=99)
    path = tmp_path / "partial.npz"
    payload = {
        "edge_rows": np.array([0, 1]),
        "edge_cols": np.array([2, 3]),
        "edge_scores": np.array([0.5, 0.25]),
        "adjacency_change": np.array([1.0, 0.5]),
        "commute_change": np.array([0.5, 0.5]),
        "node_scores": np.zeros(graph.num_nodes),
    }
    health = {"0": {"solves_by_backend": {"cg": 4}, "retries_spent": 0,
                    "failed_solves": 0, "quarantined": [],
                    "snapshots_repaired": 0, "repairs_applied": 0}}
    fingerprint = sequence_fingerprint(graph)
    write_parallel_checkpoint(path, fingerprint, {1: payload}, health)
    restored, restored_health = read_parallel_checkpoint(path, fingerprint)
    assert set(restored) == {1}
    for name, value in payload.items():
        assert np.array_equal(restored[1][name], value)
    assert restored_health == health
    with pytest.raises(CheckpointError):
        read_parallel_checkpoint(path, sequence_fingerprint(other))


def test_checkpoint_resume_skips_completed_transitions(tmp_path):
    graph = make_sequence(num_snapshots=5)
    path = tmp_path / "run.npz"
    baseline = ParallelCadDetector(workers=2, seed=4).detect(
        graph, anomalies_per_transition=3
    )
    first = ParallelCadDetector(workers=2, seed=4, checkpoint_path=path)
    first.detect(graph, anomalies_per_transition=3)
    assert path.exists()
    payloads, _health = read_parallel_checkpoint(path)
    assert sorted(payloads) == list(range(graph.num_transitions))
    # Resume with crashes armed on already-completed transitions: the
    # checkpoint must prevent them from ever being scored again.
    resumed = ParallelCadDetector(
        workers=2, seed=4, checkpoint_path=path,
        _crash_transitions=tuple(range(graph.num_transitions)),
    ).detect(graph, anomalies_per_transition=3)
    assert resumed.threshold == baseline.threshold
    for ours, theirs in zip(resumed.transitions, baseline.transitions):
        assert np.array_equal(ours.scores.edge_scores,
                              theirs.scores.edge_scores)


def test_crash_then_resume_completes_the_run(tmp_path):
    graph = make_sequence(num_snapshots=5)
    path = tmp_path / "crashy.npz"
    crashy = ParallelCadDetector(
        workers=2, seed=4, chunk_size=1, checkpoint_path=path,
        _crash_transitions=(graph.num_transitions - 1,),
    )
    with pytest.raises(ParallelExecutionError):
        crashy.detect(graph, anomalies_per_transition=3)
    resumed = ParallelCadDetector(
        workers=2, seed=4, checkpoint_path=path,
    ).detect(graph, anomalies_per_transition=3)
    baseline = CadDetector(seed=4, seed_mode="content").detect(
        graph, anomalies_per_transition=3
    )
    assert resumed.threshold == baseline.threshold


# -- pipeline and CLI entry points ------------------------------------------


def test_detect_workers_argument_matches_serial(small_dynamic_graph):
    serial = detect(small_dynamic_graph, anomalies_per_transition=3)
    parallel = detect(small_dynamic_graph, anomalies_per_transition=3,
                      workers=2)
    assert parallel.threshold == serial.threshold
    for ours, theirs in zip(parallel.transitions, serial.transitions):
        assert ours.anomalous_edges == theirs.anomalous_edges


def test_workers_env_var_routes_to_parallel_engine(
        small_dynamic_graph, monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "2")
    report = detect(small_dynamic_graph, anomalies_per_transition=3)
    monkeypatch.delenv(WORKERS_ENV_VAR)
    serial = detect(small_dynamic_graph, anomalies_per_transition=3)
    assert report.threshold == serial.threshold


def test_workers_env_var_garbage_is_ignored(
        small_dynamic_graph, monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "not-a-number")
    report = detect(small_dynamic_graph, anomalies_per_transition=3)
    assert report.detector == "CAD"


def test_cli_detect_workers_smoke(tmp_path, capsys):
    graph = make_sequence(num_snapshots=3, n=20)
    csv_path = tmp_path / "graph.csv"
    write_temporal_edge_csv(graph, csv_path)
    assert cli_main([
        "detect", str(csv_path), "-l", "2", "--seed", "3",
    ]) == 0
    serial_out = capsys.readouterr().out
    assert cli_main([
        "detect", str(csv_path), "-l", "2", "--seed", "3",
        "--workers", "2", "--shard-by", "transition",
    ]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_non_cad_detectors_ignore_workers(small_dynamic_graph):
    report = detect(small_dynamic_graph, detector="adj",
                    anomalies_per_transition=3, workers=4)
    assert report.detector == "ADJ"
