"""Unit tests for the CadDetector end-to-end behaviour."""

import numpy as np
import pytest

from repro.core import CadDetector, build_report
from repro.exceptions import DetectionError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


@pytest.fixture
def detector():
    return CadDetector(method="exact", seed=0)


class TestDetect:
    def test_localizes_injected_edge(self, small_dynamic_graph, detector):
        report = detector.detect(small_dynamic_graph,
                                 anomalies_per_transition=2)
        transition = report.transitions[0]
        assert transition.is_anomalous
        (u, v, _score) = transition.anomalous_edges[0]
        assert {u, v} == {0, 39}
        assert set(transition.anomalous_nodes[:2]) == {0, 39}

    def test_explicit_delta(self, small_dynamic_graph, detector):
        report = detector.detect(small_dynamic_graph, delta=1e-9)
        assert report.threshold == 1e-9
        assert report.transitions[0].is_anomalous

    def test_requires_exactly_one_policy(self, small_dynamic_graph,
                                         detector):
        with pytest.raises(DetectionError):
            detector.detect(small_dynamic_graph)
        with pytest.raises(DetectionError):
            detector.detect(small_dynamic_graph,
                            anomalies_per_transition=2, delta=1.0)

    def test_sequence_too_short(self, detector, path_graph):
        with pytest.raises(DetectionError):
            detector.detect(DynamicGraph([path_graph]),
                            anomalies_per_transition=1)

    def test_quiet_sequence_reports_little(self, detector):
        base = community_pair_graph(community_size=15, seed=0)
        calm = DynamicGraph([
            base,
            perturb_weights(base, 0.01, seed=1),
            perturb_weights(base, 0.01, seed=2),
        ])
        report = detector.detect(calm, anomalies_per_transition=1)
        # some transitions may report the budget, but nothing beyond a
        # handful of nodes can appear in this noise-only sequence
        assert report.total_anomalous_nodes() <= 6

    def test_multi_transition_budget(self, detector):
        base = community_pair_graph(community_size=15, p_in=0.6, seed=3)
        snapshots = [base]
        for t in range(3):
            snapshots.append(perturb_weights(snapshots[-1], 0.05,
                                             seed=10 + t))
        # strong injected edge at the final transition only
        matrix = snapshots[-1].adjacency.tolil()
        matrix[0, 29] = matrix[29, 0] = 4.0
        snapshots[-1] = GraphSnapshot(matrix.tocsr(), base.universe)
        report = detector.detect(DynamicGraph(snapshots),
                                 anomalies_per_transition=1)
        final = report.transitions[-1]
        assert final.is_anomalous
        top_edge = final.anomalous_edges[0]
        assert {top_edge[0], top_edge[1]} == {0, 29}

    def test_approx_backend_agrees_on_top_edge(self, small_dynamic_graph):
        exact = CadDetector(method="exact")
        approx = CadDetector(method="approx", k=128, seed=1)
        top_exact = exact.score_sequence(
            small_dynamic_graph
        )[0].top_edges(1)[0]
        top_approx = approx.score_sequence(
            small_dynamic_graph
        )[0].top_edges(1)[0]
        assert {top_exact[0], top_exact[1]} == {top_approx[0],
                                                top_approx[1]}


class TestBuildReport:
    def test_mismatched_lengths(self, small_dynamic_graph, detector):
        scored = detector.score_sequence(small_dynamic_graph)
        with pytest.raises(DetectionError):
            build_report(small_dynamic_graph, scored + scored, 1.0, "CAD")

    def test_edges_sorted_descending(self, small_dynamic_graph, detector):
        scored = detector.score_sequence(small_dynamic_graph)
        report = build_report(small_dynamic_graph, scored, 1e-6, "CAD")
        edges = report.transitions[0].anomalous_edges
        values = [score for _u, _v, score in edges]
        assert values == sorted(values, reverse=True)

    def test_time_labels_propagate(self, detector):
        base = community_pair_graph(community_size=10, seed=4)
        graph = DynamicGraph([
            base.with_time("jan"),
            perturb_weights(base, 0.05, seed=5).with_time("feb"),
        ])
        report = detector.detect(graph, anomalies_per_transition=1)
        assert report.transitions[0].time_from == "jan"
        assert report.transitions[0].time_to == "feb"
