"""Tests for the cad-detect command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    NodeUniverse,
    community_pair_graph,
    perturb_weights,
    snapshot_from_edges,
    write_temporal_edge_csv,
)


@pytest.fixture
def graph_file(tmp_path):
    base = community_pair_graph(community_size=10, p_in=0.6, seed=0)
    drifted = perturb_weights(base, 0.02, seed=1)
    matrix = drifted.adjacency.tolil()
    matrix[0, 19] = matrix[19, 0] = 3.0
    graph = DynamicGraph([
        base.with_time("jan"),
        GraphSnapshot(matrix.tocsr(), base.universe, "feb"),
    ])
    path = tmp_path / "graph.csv"
    write_temporal_edge_csv(graph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect", "g.csv"])
        assert args.detector == "cad"
        assert args.anomalies_per_transition == 5


class TestInfo:
    def test_prints_summary(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 20" in out
        assert "jan" in out and "feb" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.csv")]) == 1
        assert "error" in capsys.readouterr().err


class TestDetectCommand:
    def test_cad(self, graph_file, capsys):
        assert main(["detect", str(graph_file), "-l", "2",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "detector=CAD" in out
        assert "jan->feb" in out

    def test_other_detector(self, graph_file, capsys):
        assert main(["detect", str(graph_file), "--detector", "adj",
                     "-l", "2"]) == 0
        assert "detector=ADJ" in capsys.readouterr().out

    def test_explicit_delta(self, graph_file, capsys):
        assert main(["detect", str(graph_file), "--delta", "1e-9"]) == 0
        assert "threshold=1e-09" in capsys.readouterr().out


class TestScoreCommand:
    def test_prints_tables(self, graph_file, capsys):
        assert main(["score", str(graph_file), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "delta_e" in out
        assert "delta_n" in out

    def test_bad_transition_index(self, graph_file, capsys):
        assert main(["score", str(graph_file), "--transition", "9"]) == 1
        assert "transition" in capsys.readouterr().err
