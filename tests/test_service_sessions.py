"""Session lifecycle: eviction, backpressure, concurrency, drain."""

from __future__ import annotations

import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.streaming import StreamingCadDetector
from repro.graphs.snapshot import GraphSnapshot, NodeUniverse
from repro.pipeline.serialize import snapshot_to_payload
from repro.service import (
    CapacityError,
    NotFoundError,
    SessionManager,
    SessionStateError,
    ShuttingDownError,
)


def random_payloads(n=12, steps=8, seed=5):
    """A deterministic random stream as wire payloads."""
    rng = np.random.default_rng(seed)
    universe = NodeUniverse([f"n{i}" for i in range(n)])
    weights = np.triu(
        (rng.random((n, n)) < 0.35)
        * rng.integers(1, 5, (n, n)), 1
    ).astype(float)
    payloads = []
    for t in range(steps):
        w = weights.copy()
        for _ in range(3):
            i, j = rng.integers(0, n, 2)
            if i != j:
                w[min(i, j), max(i, j)] = float(rng.integers(0, 8))
        weights = w
        snapshot = GraphSnapshot(sp.csr_matrix(w + w.T), universe, time=t)
        payloads.append(snapshot_to_payload(snapshot))
    return payloads


def entries(report_document):
    """Comparable (index, edges, nodes, scores) tuples of a report."""
    return [
        (
            entry["index"],
            sorted((e["source"], e["target"]) for e in entry["edges"]),
            sorted(entry["nodes"]),
            [e["score"] for e in entry["edges"]],
        )
        for entry in report_document["transitions"]
    ]


@pytest.fixture
def payloads():
    return random_payloads()


class TestSessionLifecycle:
    def test_create_push_report_delete(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        info = manager.create_session({"seed": 3, "warmup": 2})
        sid = info["session"]
        assert info["resident"] and not info["finalized"]
        for payload in payloads:
            response = manager.push(sid, payload)
            assert response["pushed"] == 1
        report = manager.report(sid)
        assert report["session"] == sid
        assert len(report["transitions"]) == len(payloads) - 1
        final = manager.finalize(sid)
        assert final["finalized"] is True
        with pytest.raises(SessionStateError):
            manager.push(sid, payloads[0])
        manager.delete(sid)
        with pytest.raises(NotFoundError):
            manager.report(sid)

    def test_report_before_any_transition_conflicts(self, tmp_path,
                                                    payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({})["session"]
        with pytest.raises(SessionStateError):
            manager.report(sid)
        manager.push(sid, payloads[0])
        with pytest.raises(SessionStateError):
            manager.report(sid)  # first snapshot scores nothing

    def test_draining_rejects_new_work(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({})["session"]
        manager.begin_drain()
        with pytest.raises(ShuttingDownError):
            manager.create_session({})
        with pytest.raises(ShuttingDownError):
            manager.push(sid, payloads[0])


class TestEviction:
    def test_evict_then_resume_matches_uninterrupted(self, tmp_path,
                                                     payloads):
        config = {"seed": 3, "warmup": 2}
        interrupted = SessionManager(max_sessions=1,
                                     checkpoint_dir=tmp_path / "a")
        sid = interrupted.create_session(config)["session"]
        for payload in payloads[:4]:
            interrupted.push(sid, payload)
        # A second session forces the first out of memory (LRU).
        other = interrupted.create_session({"seed": 99})["session"]
        interrupted.push(other, payloads[0])
        assert not interrupted.session_info(sid)["resident"]
        # Continuing the evicted session resurrects it transparently.
        for payload in payloads[4:]:
            interrupted.push(sid, payload)

        reference = SessionManager(checkpoint_dir=tmp_path / "b")
        ref = reference.create_session(config)["session"]
        for payload in payloads:
            reference.push(ref, payload)

        assert entries(interrupted.report(sid)) == \
            entries(reference.report(ref))

    def test_evicted_session_keeps_metadata(self, tmp_path, payloads):
        manager = SessionManager(max_sessions=1, checkpoint_dir=tmp_path)
        sid = manager.create_session({})["session"]
        for payload in payloads[:3]:
            manager.push(sid, payload)
        manager.create_session({})
        info = manager.session_info(sid)
        assert not info["resident"]
        assert info["has_checkpoint"]
        assert info["pushes"] == 3

    def test_delete_removes_checkpoint_files(self, tmp_path, payloads):
        manager = SessionManager(max_sessions=1, checkpoint_dir=tmp_path)
        sid = manager.create_session({})["session"]
        for payload in payloads[:3]:
            manager.push(sid, payload)
        manager.create_session({})  # evicts sid -> files on disk
        assert list(tmp_path.glob(f"{sid}.*"))
        manager.delete(sid)
        assert not list(tmp_path.glob(f"{sid}.*"))


class TestBackpressure:
    def test_oversized_batch_rejected_up_front(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=3)
        sid = manager.create_session({})["session"]
        with pytest.raises(CapacityError) as excinfo:
            manager.push(sid, {"snapshots": payloads[:5]})
        assert excinfo.value.retry_after > 0
        assert excinfo.value.status == 429

    def test_full_queue_yields_429_and_recovers(self, tmp_path, payloads,
                                                monkeypatch):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=1)
        first = manager.create_session({})["session"]
        second = manager.create_session({})["session"]

        entered = threading.Event()
        release = threading.Event()
        original = StreamingCadDetector.push

        def slow_push(self, snapshot):
            entered.set()
            assert release.wait(timeout=10)
            return original(self, snapshot)

        monkeypatch.setattr(StreamingCadDetector, "push", slow_push)
        worker = threading.Thread(
            target=manager.push, args=(first, payloads[0]), daemon=True
        )
        worker.start()
        assert entered.wait(timeout=10)
        # The single ingest slot is held by the in-flight push.
        with pytest.raises(CapacityError):
            manager.push(second, payloads[0])
        release.set()
        worker.join(timeout=10)
        assert not worker.is_alive()
        # The slot was released; the same push now succeeds.
        response = manager.push(second, payloads[0])
        assert response["pushed"] == 1


class TestConcurrency:
    def test_concurrent_pushes_to_distinct_sessions(self, tmp_path):
        streams = {
            seed: random_payloads(seed=seed) for seed in (11, 12, 13, 14)
        }
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=16)
        sessions = {
            seed: manager.create_session({"seed": 3, "warmup": 2})[
                "session"
            ]
            for seed in streams
        }
        errors = []

        def feed(seed):
            try:
                for payload in streams[seed]:
                    manager.push(sessions[seed], payload)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((seed, exc))

        threads = [
            threading.Thread(target=feed, args=(seed,))
            for seed in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors

        for seed, sid in sessions.items():
            reference = SessionManager(
                checkpoint_dir=tmp_path / f"ref{seed}"
            )
            ref = reference.create_session({"seed": 3, "warmup": 2})[
                "session"
            ]
            for payload in streams[seed]:
                reference.push(ref, payload)
            assert entries(manager.report(sid)) == \
                entries(reference.report(ref))


class TestParallelBatches:
    def test_parallel_batch_matches_serial(self, tmp_path, payloads):
        serial = SessionManager(checkpoint_dir=tmp_path / "serial")
        a = serial.create_session({"seed": 3, "warmup": 2})["session"]
        for payload in payloads:
            serial.push(a, payload)

        parallel = SessionManager(checkpoint_dir=tmp_path / "par",
                                  workers=2, max_queue=16)
        b = parallel.create_session({"seed": 3, "warmup": 2})["session"]
        parallel.push(b, payloads[0])
        response = parallel.push(b, {"snapshots": payloads[1:]})
        assert response["pushed"] == len(payloads) - 1
        assert entries(parallel.report(b)) == entries(serial.report(a))


class TestDrain:
    def test_drain_leaves_resumable_checkpoints(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"seed": 3, "warmup": 2})["session"]
        for payload in payloads:
            manager.push(sid, payload)
        before = entries(manager.report(sid))
        assert manager.drain() == 1
        assert (tmp_path / f"{sid}.npz").exists()
        assert (tmp_path / f"{sid}.json").exists()

        # A fresh manager over the same directory adopts the session.
        revived = SessionManager(checkpoint_dir=tmp_path)
        info = revived.session_info(sid)
        assert not info["resident"]
        assert entries(revived.report(sid)) == before

    def test_drain_skips_empty_sessions_but_keeps_them(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"warmup": 7})["session"]
        assert manager.drain() == 0
        revived = SessionManager(checkpoint_dir=tmp_path)
        info = revived.session_info(sid)
        assert info["config"]["warmup"] == 7


class TestSanitizeRoute:
    def test_dirty_payload_quarantined_and_stream_continues(
            self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"sanitize": "quarantine"})["session"]
        manager.push(sid, payloads[0])
        dirty = dict(payloads[1])
        dirty["edges"] = [["n0", "n0", 5.0]] + list(dirty["edges"])
        response = manager.push(sid, dirty)
        assert response["quarantined"] == 1
        assert response["quarantined_total"] == 1
        # The stream survives and keeps scoring against the last good
        # snapshot.
        response = manager.push(sid, payloads[2])
        assert response["quarantined"] == 0
        assert response["num_transitions"] == 1
