"""The parallel engine's determinism contract.

* transition sharding reproduces a serial run **bit for bit** — same
  edge sets, same tie-breaking, identical score arrays — for any worker
  count, on both the exact and the (content-seeded) approximate
  backend, and with solver faults injected;
* component sharding is deterministic and numerically equivalent
  (``allclose``) with identical support/anomaly sets, but not bitwise
  (per-component pseudoinverses round differently from one full
  factorisation) — which is exactly why ``"auto"`` only chooses it when
  the exact backend can skip cubic work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CadDetector,
    DynamicGraph,
    EnronLikeSimulator,
    FallbackPolicy,
    FaultInjector,
    ParallelCadDetector,
)
from repro.datasets import toy_example
from repro.graphs import perturb_weights, random_sparse_graph

WORKER_COUNTS = (1, 2, 4)


def make_sequence(num_snapshots=4, n=36, seed=7,
                  connected=True) -> DynamicGraph:
    snapshot = random_sparse_graph(n, mean_degree=3.5, seed=seed,
                                   connected=connected)
    snapshots = [snapshot]
    for step in range(num_snapshots - 1):
        snapshots.append(perturb_weights(
            snapshots[-1], relative_noise=0.15, seed=seed + step + 1,
        ))
    return DynamicGraph(snapshots)


def disconnected_sequence(num_snapshots=3, blocks=3, block_size=10,
                          seed=2) -> DynamicGraph:
    rng = np.random.default_rng(seed)
    n = blocks * block_size
    matrices = []
    for _ in range(num_snapshots):
        full = np.zeros((n, n))
        for b in range(blocks):
            band = np.triu(
                (rng.random((block_size, block_size)) < 0.4), 1
            ).astype(float)
            sl = slice(b * block_size, (b + 1) * block_size)
            full[sl, sl] = band + band.T
        matrices.append(full)
    return DynamicGraph.from_adjacencies(matrices)


def assert_reports_bitwise_equal(serial, parallel):
    assert parallel.threshold == serial.threshold
    assert len(parallel.transitions) == len(serial.transitions)
    for ours, theirs in zip(parallel.transitions, serial.transitions):
        assert ours.anomalous_edges == theirs.anomalous_edges
        assert ours.anomalous_nodes == theirs.anomalous_nodes
        assert np.array_equal(ours.scores.edge_rows,
                              theirs.scores.edge_rows)
        assert np.array_equal(ours.scores.edge_cols,
                              theirs.scores.edge_cols)
        assert np.array_equal(ours.scores.edge_scores,
                              theirs.scores.edge_scores)
        assert np.array_equal(ours.scores.node_scores,
                              theirs.scores.node_scores)
        for key, value in theirs.scores.extras.items():
            assert np.array_equal(ours.scores.extras[key], value)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_exact_transition_sharding_is_bitwise_serial(workers):
    graph = make_sequence()
    serial = CadDetector(method="exact", seed=13).detect(
        graph, anomalies_per_transition=3
    )
    parallel = ParallelCadDetector(
        workers=workers, shard_by="transition", method="exact", seed=13,
    ).detect(graph, anomalies_per_transition=3)
    assert_reports_bitwise_equal(serial, parallel)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_approx_content_seeded_sharding_is_bitwise_serial(workers):
    graph = make_sequence()
    serial = CadDetector(
        method="approx", k=12, seed=21, seed_mode="content",
    ).detect(graph, anomalies_per_transition=3)
    parallel = ParallelCadDetector(
        workers=workers, shard_by="transition",
        method="approx", k=12, seed=21,
    ).detect(graph, anomalies_per_transition=3)
    assert_reports_bitwise_equal(serial, parallel)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_faulty_solver_chain_stays_bitwise_serial(workers):
    """Injected CG failures escalate to the deterministic direct solver
    in every process, so even a degraded run merges bit for bit."""
    graph = make_sequence(num_snapshots=3)

    def policy():
        return FallbackPolicy(
            cg_retries=1,
            fault_injector=FaultInjector(
                fail_solves=range(10_000),
                fail_backends=("cg", "cg-retry"),
            ),
        )

    serial = CadDetector(
        method="approx", k=8, seed=5, seed_mode="content",
        solver=policy(),
    ).detect(graph, anomalies_per_transition=3)
    parallel = ParallelCadDetector(
        workers=workers, shard_by="transition",
        method="approx", k=8, seed=5, solver=policy(),
    ).detect(graph, anomalies_per_transition=3)
    assert_reports_bitwise_equal(serial, parallel)
    # Every solve must have been served by a fallback backend.
    assert serial.health is not None and parallel.health is not None
    assert parallel.health.solves_by_backend.get("cg", 0) == 0
    assert parallel.health.fallbacks_taken >= serial.health.fallbacks_taken


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_component_sharding_matches_serial_numerically(workers):
    graph = disconnected_sequence()
    serial = CadDetector(method="exact", seed=3).detect(
        graph, anomalies_per_transition=3
    )
    parallel = ParallelCadDetector(
        workers=workers, shard_by="component", method="exact", seed=3,
    ).detect(graph, anomalies_per_transition=3)
    assert np.isclose(parallel.threshold, serial.threshold,
                      rtol=1e-9, atol=1e-12)
    for ours, theirs in zip(parallel.transitions, serial.transitions):
        assert np.array_equal(ours.scores.edge_rows,
                              theirs.scores.edge_rows)
        assert np.array_equal(ours.scores.edge_cols,
                              theirs.scores.edge_cols)
        assert np.allclose(ours.scores.edge_scores,
                           theirs.scores.edge_scores,
                           rtol=1e-9, atol=1e-12)
        assert np.allclose(ours.scores.node_scores,
                           theirs.scores.node_scores,
                           rtol=1e-9, atol=1e-12)
        assert {e[:2] for e in ours.anomalous_edges} == \
            {e[:2] for e in theirs.anomalous_edges}
        assert set(ours.anomalous_nodes) == set(theirs.anomalous_nodes)


def test_component_sharding_runs_are_repeatable():
    graph = disconnected_sequence()
    first = ParallelCadDetector(
        workers=2, shard_by="component", method="exact", seed=3,
    ).detect(graph, anomalies_per_transition=3)
    second = ParallelCadDetector(
        workers=4, shard_by="component", method="exact", seed=3,
    ).detect(graph, anomalies_per_transition=3)
    assert first.threshold == second.threshold
    for ours, theirs in zip(first.transitions, second.transitions):
        assert np.array_equal(ours.scores.edge_scores,
                              theirs.scores.edge_scores)


def test_toy_dataset_byte_identity():
    graph = toy_example().graph
    serial = CadDetector(seed=7).detect(graph, anomalies_per_transition=4)
    parallel = ParallelCadDetector(workers=4, seed=7).detect(
        graph, anomalies_per_transition=4
    )
    assert_reports_bitwise_equal(serial, parallel)
    assert serial.summary() == parallel.summary()


def test_enron_simulator_byte_identity():
    data = EnronLikeSimulator(seed=11).generate()
    serial = CadDetector(seed=7).detect(
        data.graph, anomalies_per_transition=5
    )
    parallel = ParallelCadDetector(workers=4, seed=7).detect(
        data.graph, anomalies_per_transition=5
    )
    assert_reports_bitwise_equal(serial, parallel)
    assert serial.summary() == parallel.summary()


def test_from_detector_copies_backend_configuration():
    serial = CadDetector(method="exact", k=17, seed=99)
    parallel = ParallelCadDetector.from_detector(serial, workers=2)
    assert parallel.calculator.spec()["k"] == 17
    assert parallel.calculator.spec()["seed"] == 99
    assert parallel.calculator.seed_mode == "content"
