"""Unit tests for the streaming detector, explanations, and the
pluggable-distance detector."""

import numpy as np
import pytest

from repro.core import (
    CadDetector,
    GenericDistanceDetector,
    StreamingCadDetector,
    explain_node,
    explain_transition,
)
from repro.exceptions import DetectionError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


def _snapshots(count=5, inject_at=None):
    base = community_pair_graph(community_size=15, p_in=0.5,
                                p_out=0.05, seed=2)
    snapshots = [base]
    for t in range(count - 1):
        drifted = perturb_weights(snapshots[-1], 0.02, seed=50 + t)
        snapshots.append(drifted)
    if inject_at is not None:
        matrix = snapshots[inject_at].adjacency.tolil()
        matrix[0, 29] = matrix[29, 0] = 4.0
        snapshots[inject_at] = GraphSnapshot(
            matrix.tocsr(), base.universe
        )
    return snapshots


class TestStreamingDetector:
    def test_first_push_returns_none(self):
        stream = StreamingCadDetector(method="exact")
        assert stream.push(_snapshots(1)[0]) is None
        assert stream.num_transitions == 0

    def test_warmup_silent(self):
        stream = StreamingCadDetector(warmup=3, method="exact")
        snapshots = _snapshots(3)
        results = [stream.push(s) for s in snapshots]
        assert results[0] is None and results[1] is None

    def test_event_flagged_online(self):
        stream = StreamingCadDetector(
            anomalies_per_transition=2, warmup=2, method="exact",
        )
        snapshots = _snapshots(6, inject_at=5)
        results = [stream.push(s) for s in snapshots]
        final = results[-1]
        assert final is not None and final.is_anomalous
        top = final.anomalous_edges[0]
        assert {top[0], top[1]} == {0, 29}

    def test_finalize_matches_offline(self):
        snapshots = _snapshots(6, inject_at=5)
        stream = StreamingCadDetector(
            anomalies_per_transition=2, warmup=2, method="exact",
        )
        for snapshot in snapshots:
            stream.push(snapshot)
        online = stream.finalize()

        offline = CadDetector(method="exact").detect(
            DynamicGraph(snapshots), anomalies_per_transition=2
        )
        assert online.node_counts().tolist() == \
            offline.node_counts().tolist()

    def test_finalize_without_pushes_raises(self):
        with pytest.raises(DetectionError):
            StreamingCadDetector(method="exact").finalize()

    def test_universe_mismatch_rejected(self):
        stream = StreamingCadDetector(method="exact")
        stream.push(_snapshots(1)[0])
        from repro.graphs import NodeUniverse

        other = GraphSnapshot(np.zeros((30, 30)),
                              NodeUniverse(range(100, 130)))
        from repro.exceptions import NodeUniverseMismatchError

        with pytest.raises(NodeUniverseMismatchError):
            stream.push(other)


class TestExplain:
    @pytest.fixture
    def scored(self):
        snapshots = _snapshots(2, inject_at=1)
        detector = CadDetector(method="exact")
        return detector.score_transition(snapshots[0], snapshots[1])

    def test_shares_sum_to_one(self, scored):
        explanation = explain_node(scored, 0)
        assert sum(c.share for c in explanation.contributions) == \
            pytest.approx(1.0)

    def test_total_matches_node_score(self, scored):
        explanation = explain_node(scored, 0)
        assert explanation.total_score == pytest.approx(
            scored.node_scores[0]
        )

    def test_top_contribution_is_injected_edge(self, scored):
        explanation = explain_node(scored, 0)
        assert explanation.contributions[0].neighbor == 29

    def test_factors_present_for_cad(self, scored):
        contribution = explain_node(scored, 0).contributions[0]
        assert contribution.adjacency_change is not None
        assert contribution.distance_change is not None
        assert contribution.score == pytest.approx(
            contribution.adjacency_change * contribution.distance_change
        )

    def test_describe_readable(self, scored):
        text = explain_node(scored, 0).describe()
        assert "top contributors" in text
        assert "29" in text

    def test_edge_less_detector_rejected(self, scored):
        from repro.baselines import ActDetector

        snapshots = _snapshots(2)
        act_scores = ActDetector().score_transition(
            snapshots[0], snapshots[1]
        )
        with pytest.raises(DetectionError):
            explain_node(act_scores, 0)

    def test_explain_transition_narrative(self):
        snapshots = _snapshots(2, inject_at=1)
        report = CadDetector(method="exact").detect(
            DynamicGraph(snapshots), anomalies_per_transition=2
        )
        text = explain_transition(report.transitions[0])
        assert "anomalous edges" in text

    def test_explain_quiet_transition(self):
        snapshots = _snapshots(2)
        report = CadDetector(method="exact").detect(
            DynamicGraph(snapshots), delta=1e12
        )
        text = explain_transition(report.transitions[0])
        assert "no anomalies" in text


class TestGenericDistanceDetector:
    @pytest.fixture
    def pair(self):
        snapshots = _snapshots(2, inject_at=1)
        return snapshots[0], snapshots[1]

    @pytest.mark.parametrize(
        "distance", ["commute", "resistance", "shortest_path", "forest"]
    )
    def test_all_distances_flag_injected_edge(self, pair, distance):
        detector = GenericDistanceDetector(distance)
        scores = detector.score_transition(*pair)
        (u, v, _score), *_ = scores.top_edges(1)
        assert {u, v} == {0, 29}

    def test_commute_variant_matches_cad(self, pair):
        generic = GenericDistanceDetector("commute").score_transition(
            *pair
        )
        cad = CadDetector(method="exact").score_transition(*pair)
        np.testing.assert_allclose(
            generic.edge_scores, cad.edge_scores, rtol=1e-6
        )

    def test_custom_callable(self, pair):
        def silly(adjacency):
            n = adjacency.shape[0]
            return np.ones((n, n)) - np.eye(n)

        detector = GenericDistanceDetector(silly)
        scores = detector.score_transition(*pair)
        # constant distances: every score is zero
        assert scores.total_edge_score() == 0.0
        assert detector.name == "CAD[silly]"

    def test_unknown_name_rejected(self):
        with pytest.raises(DetectionError):
            GenericDistanceDetector("euclidean")

    def test_name_override(self):
        assert GenericDistanceDetector(
            "forest", name="myname"
        ).name == "myname"
