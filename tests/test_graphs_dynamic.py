"""Unit tests for DynamicGraph."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError, NodeUniverseMismatchError
from repro.graphs import DynamicGraph, GraphSnapshot, NodeUniverse


def _chain(n=3, count=3, weights=1.0):
    adjacency = np.zeros((n, n))
    for i in range(n - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = weights
    first = GraphSnapshot(adjacency)
    return [GraphSnapshot(adjacency * (t + 1), first.universe, time=t)
            for t in range(count)]


class TestConstruction:
    def test_from_snapshots(self):
        graph = DynamicGraph(_chain())
        assert len(graph) == 3
        assert graph.num_transitions == 2

    def test_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            DynamicGraph([])

    def test_rejects_mixed_universes(self):
        a = GraphSnapshot(np.zeros((2, 2)))
        b = GraphSnapshot(np.zeros((2, 2)), NodeUniverse("xy"))
        with pytest.raises(NodeUniverseMismatchError):
            DynamicGraph([a, b])

    def test_from_adjacencies(self):
        mats = [np.array([[0.0, w], [w, 0.0]]) for w in (1.0, 2.0)]
        graph = DynamicGraph.from_adjacencies(mats, times=["jan", "feb"])
        assert graph[0].time == "jan"
        assert graph[1].weight(0, 1) == 2.0

    def test_from_adjacencies_rejects_time_mismatch(self):
        with pytest.raises(GraphConstructionError):
            DynamicGraph.from_adjacencies([np.zeros((2, 2))], times=[1, 2])

    def test_from_adjacencies_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            DynamicGraph.from_adjacencies([])


class TestAccessors:
    def test_transitions_iterates_pairs(self):
        graph = DynamicGraph(_chain(count=4))
        pairs = list(graph.transitions())
        assert len(pairs) == 3
        assert pairs[0][0] is graph[0]
        assert pairs[2][1] is graph[3]

    def test_times(self):
        graph = DynamicGraph(_chain(count=3))
        assert graph.times == (0, 1, 2)

    def test_mean_num_edges(self):
        graph = DynamicGraph(_chain(n=3, count=2))
        assert graph.mean_num_edges() == 2.0

    def test_subsequence(self):
        graph = DynamicGraph(_chain(count=5))
        sub = graph.subsequence(1, 4)
        assert len(sub) == 3
        assert sub[0].time == 1

    def test_subsequence_empty_raises(self):
        graph = DynamicGraph(_chain(count=3))
        with pytest.raises(GraphConstructionError):
            graph.subsequence(2, 2)

    def test_node_activity(self):
        graph = DynamicGraph(_chain(n=3, count=3))
        activity = graph.node_activity(1)
        # middle node degree is 2 * scale at each step
        assert activity.tolist() == [2.0, 4.0, 6.0]

    def test_iteration(self):
        graph = DynamicGraph(_chain(count=3))
        assert [snapshot.time for snapshot in graph] == [0, 1, 2]
