"""Tests for permutation-null significance and windowed detection."""

import numpy as np
import pytest

from repro.core import (
    CadDetector,
    permutation_null_max_scores,
    significance_threshold,
    significant_edges,
)
from repro.exceptions import ThresholdError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)
from repro.pipeline import detect_windowed


@pytest.fixture
def injected_scores():
    base = community_pair_graph(community_size=15, p_in=0.5,
                                p_out=0.05, seed=2)
    drifted = perturb_weights(base, 0.03, seed=3)
    matrix = drifted.adjacency.tolil()
    matrix[0, 29] = matrix[29, 0] = 4.0
    changed = GraphSnapshot(matrix.tocsr(), base.universe)
    return CadDetector(method="exact").score_transition(base, changed)


@pytest.fixture
def quiet_scores():
    base = community_pair_graph(community_size=15, p_in=0.5,
                                p_out=0.05, seed=2)
    drifted = perturb_weights(base, 0.03, seed=4)
    return CadDetector(method="exact").score_transition(base, drifted)


class TestPermutationNull:
    def test_null_shape(self, injected_scores):
        null = permutation_null_max_scores(
            injected_scores, num_permutations=50, seed=0
        )
        assert null.shape == (50,)
        assert (null >= 0).all()

    def test_deterministic(self, injected_scores):
        a = permutation_null_max_scores(injected_scores, 30, seed=5)
        b = permutation_null_max_scores(injected_scores, 30, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_requires_factors(self, injected_scores):
        from dataclasses import replace

        stripped = replace(injected_scores, extras={})
        with pytest.raises(ThresholdError):
            permutation_null_max_scores(stripped)


class TestSignificance:
    def test_injected_edge_significant(self, injected_scores):
        mask, p_values = significant_edges(
            injected_scores, alpha=0.05, num_permutations=200, seed=0
        )
        top = int(np.argmax(injected_scores.edge_scores))
        assert mask[top]
        assert p_values[top] < 0.05
        # only a handful of edges survive the max-null cut
        assert mask.sum() <= 5

    def test_quiet_transition_mostly_insignificant(self, quiet_scores):
        mask, _p = significant_edges(
            quiet_scores, alpha=0.01, num_permutations=200, seed=1
        )
        # noise-only drift: at most a couple of lucky survivors
        assert mask.sum() <= max(2, quiet_scores.num_scored_edges // 50)

    def test_threshold_monotone_in_alpha(self, injected_scores):
        strict = significance_threshold(injected_scores, alpha=0.01,
                                        num_permutations=200, seed=2)
        loose = significance_threshold(injected_scores, alpha=0.2,
                                       num_permutations=200, seed=2)
        assert strict >= loose

    def test_pvalues_in_unit_interval(self, injected_scores):
        _mask, p_values = significant_edges(
            injected_scores, num_permutations=100, seed=3
        )
        assert (p_values > 0).all() and (p_values <= 1).all()


class TestDetectWindowed:
    def _long_history(self):
        base = community_pair_graph(community_size=12, p_in=0.5,
                                    seed=7)
        snapshots = [base]
        for t in range(8):
            snapshots.append(perturb_weights(base, 0.02, seed=90 + t))
        # an injected event in the final window
        matrix = snapshots[7].adjacency.tolil()
        matrix[0, 23] = matrix[23, 0] = 4.0
        snapshots[7] = GraphSnapshot(matrix.tocsr(), base.universe)
        return DynamicGraph(snapshots)

    def test_window_coverage(self):
        graph = self._long_history()
        reports = detect_windowed(graph, window=4, detector="cad",
                                  anomalies_per_transition=2,
                                  method="exact")
        # stride defaults to window-1: transitions covered once
        total = sum(len(r.transitions) for r in reports)
        assert total >= graph.num_transitions

    def test_event_found_in_its_window(self):
        graph = self._long_history()
        reports = detect_windowed(graph, window=4, detector="cad",
                                  anomalies_per_transition=2,
                                  method="exact")
        flagged_edges = [
            frozenset((u, v))
            for report in reports
            for transition in report.anomalous_transitions()
            for u, v, _s in transition.anomalous_edges
        ]
        assert frozenset((0, 23)) in flagged_edges

    def test_explicit_stride(self):
        graph = self._long_history()
        reports = detect_windowed(graph, window=3, stride=3,
                                  detector="cad",
                                  anomalies_per_transition=1,
                                  method="exact")
        assert len(reports) == 3

    def test_instance_with_kwargs_rejected(self):
        graph = self._long_history()
        from repro.exceptions import DetectionError

        with pytest.raises(DetectionError):
            detect_windowed(graph, window=3,
                            detector=CadDetector(method="exact"),
                            method="exact")
