"""Unit tests for incremental Laplacian pseudoinverse updates."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.graphs import GraphSnapshot, random_sparse_graph
from repro.linalg import (
    IncrementalPseudoinverse,
    laplacian_pseudoinverse,
    rank_one_merge_update,
    rank_one_update,
)


@pytest.fixture
def graph():
    return random_sparse_graph(50, mean_degree=4.0, seed=3,
                               connected=True)


class TestRankOneUpdate:
    def test_matches_recompute_strengthen(self, graph):
        pseudo = laplacian_pseudoinverse(graph.adjacency)
        updated = rank_one_update(pseudo, 0, 1, 2.0)
        edited = graph.adjacency.tolil()
        edited[0, 1] = edited[1, 0] = edited[0, 1] + 2.0
        expected = laplacian_pseudoinverse(edited.tocsr())
        np.testing.assert_allclose(updated, expected, atol=1e-9)

    def test_matches_recompute_weaken(self, graph):
        # weaken an existing edge without deleting it
        adjacency = graph.adjacency.tolil()
        i, j = 0, graph.neighbors(0)[0]
        delta = -0.5 * float(adjacency[i, j])
        pseudo = laplacian_pseudoinverse(graph.adjacency)
        updated = rank_one_update(pseudo, i, j, delta)
        adjacency[i, j] = adjacency[j, i] = adjacency[i, j] + delta
        expected = laplacian_pseudoinverse(adjacency.tocsr())
        np.testing.assert_allclose(updated, expected, atol=1e-8)

    def test_zero_delta_is_identity(self, graph):
        pseudo = laplacian_pseudoinverse(graph.adjacency)
        np.testing.assert_array_equal(
            rank_one_update(pseudo, 0, 1, 0.0), pseudo
        )

    def test_self_loop_rejected(self, graph):
        pseudo = laplacian_pseudoinverse(graph.adjacency)
        with pytest.raises(SolverError):
            rank_one_update(pseudo, 2, 2, 1.0)

    def test_bridge_removal_detected(self):
        # path 0-1-2: deleting edge (1,2) splits the graph
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 1.0
        pseudo = laplacian_pseudoinverse(adjacency)
        with pytest.raises(SolverError, match="component"):
            rank_one_update(pseudo, 1, 2, -1.0)


class TestRankOneMergeUpdate:
    def test_matches_recompute(self, disconnected_graph):
        pseudo = laplacian_pseudoinverse(disconnected_graph.adjacency)
        labels = np.array([0, 0, 1, 1])
        updated = rank_one_merge_update(pseudo, 1, 2, 1.3, labels)
        edited = disconnected_graph.adjacency.tolil()
        edited[1, 2] = edited[2, 1] = 1.3
        expected = laplacian_pseudoinverse(edited.tocsr())
        np.testing.assert_allclose(updated, expected, atol=1e-10)

    def test_isolated_node_joining(self):
        # Merging a singleton component exercises size-1 null blocks.
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 2.0
        pseudo = laplacian_pseudoinverse(adjacency)
        updated = rank_one_merge_update(pseudo, 1, 2, 0.5,
                                        np.array([0, 0, 1]))
        adjacency[1, 2] = adjacency[2, 1] = 0.5
        expected = laplacian_pseudoinverse(adjacency)
        np.testing.assert_allclose(updated, expected, atol=1e-10)

    def test_same_component_rejected(self, disconnected_graph):
        pseudo = laplacian_pseudoinverse(disconnected_graph.adjacency)
        with pytest.raises(SolverError, match="share a component"):
            rank_one_merge_update(pseudo, 0, 1, 1.0,
                                  np.array([0, 0, 1, 1]))

    def test_non_positive_weight_rejected(self, disconnected_graph):
        pseudo = laplacian_pseudoinverse(disconnected_graph.adjacency)
        with pytest.raises(SolverError, match="positive"):
            rank_one_merge_update(pseudo, 1, 2, 0.0,
                                  np.array([0, 0, 1, 1]))


class TestIncrementalPseudoinverse:
    def test_tracks_many_edits(self, graph):
        incremental = IncrementalPseudoinverse(graph)
        adjacency = graph.adjacency.tolil()
        rng = np.random.default_rng(0)
        for _ in range(12):
            i, j = rng.integers(0, 50, size=2)
            if i == j:
                continue
            weight = float(rng.uniform(0.1, 2.0))
            incremental.apply_edit(int(i), int(j), weight)
            adjacency[i, j] = adjacency[j, i] = weight
        expected = laplacian_pseudoinverse(adjacency.tocsr())
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-7)

    def test_component_merge_updates_without_recompute(
            self, disconnected_graph):
        incremental = IncrementalPseudoinverse(disconnected_graph)
        before = incremental.recompute_count
        incremental.apply_edit(1, 2, 1.0)  # joins the two components
        assert incremental.recompute_count == before  # no fallback
        assert incremental.merge_update_count == 1
        expected = laplacian_pseudoinverse(incremental.adjacency)
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-9)

    def test_growing_disconnected_graph_never_recomputes(self):
        # Regression: a graph assembled component by component used to
        # trigger a full O(n^3) recompute on *every* joining edge; the
        # Meyer merge update absorbs them all. Start from 8 isolated
        # pairs and stitch them into one path.
        adjacency = np.zeros((16, 16))
        for i in range(0, 16, 2):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        incremental = IncrementalPseudoinverse(GraphSnapshot(adjacency))
        rng = np.random.default_rng(21)
        for i in range(1, 15, 2):
            incremental.apply_edit(i, i + 1,
                                   float(rng.uniform(0.5, 2.0)))
        assert incremental.recompute_count == 1  # only the initial build
        assert incremental.merge_update_count == 7
        expected = laplacian_pseudoinverse(incremental.adjacency)
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-8)

    def test_merge_then_within_component_edits_stay_consistent(self):
        # After a merge the relabelled components must feed later
        # Sherman–Morrison updates correctly.
        adjacency = np.zeros((6, 6))
        for i, j in [(0, 1), (1, 2), (3, 4), (4, 5)]:
            adjacency[i, j] = adjacency[j, i] = 1.0
        incremental = IncrementalPseudoinverse(GraphSnapshot(adjacency))
        incremental.apply_edit(2, 3, 1.5)  # merge the two paths
        incremental.apply_edit(0, 5, 0.7)  # now within one component
        assert incremental.recompute_count == 1
        expected = laplacian_pseudoinverse(incremental.adjacency)
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-9)

    def test_component_split_recomputes(self):
        adjacency = np.zeros((4, 4))
        for i, j in [(0, 1), (1, 2), (2, 3)]:
            adjacency[i, j] = adjacency[j, i] = 1.0
        incremental = IncrementalPseudoinverse(GraphSnapshot(adjacency))
        before = incremental.recompute_count
        incremental.apply_edit(1, 2, 0.0)  # splits the path
        assert incremental.recompute_count == before + 1
        expected = laplacian_pseudoinverse(incremental.adjacency)
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-9)

    def test_advance_to_matches_target(self, graph):
        from repro.graphs import perturb_weights

        target = perturb_weights(graph, 0.2, seed=9)
        incremental = IncrementalPseudoinverse(graph)
        edits = incremental.advance_to(target)
        assert edits > 0
        expected = laplacian_pseudoinverse(target.adjacency)
        np.testing.assert_allclose(incremental.pseudoinverse, expected,
                                   atol=1e-6)

    def test_commute_times_from_incremental(self, graph):
        incremental = IncrementalPseudoinverse(graph)
        incremental.apply_edit(0, 25, 3.0)
        from repro.linalg import commute_times_for_pairs

        rows = np.array([0, 5])
        cols = np.array([25, 30])
        expected = commute_times_for_pairs(
            incremental.adjacency, rows, cols
        )
        np.testing.assert_allclose(
            incremental.commute_times(rows, cols), expected, atol=1e-7
        )

    def test_rejects_negative_weight(self, graph):
        incremental = IncrementalPseudoinverse(graph)
        with pytest.raises(SolverError):
            incremental.apply_edit(0, 1, -1.0)

    def test_noop_edit(self, graph):
        incremental = IncrementalPseudoinverse(graph)
        weight = float(graph.adjacency[0, graph.neighbors(0)[0]])
        j = graph.neighbors(0)[0]
        before = incremental.pseudoinverse.copy()
        incremental.apply_edit(0, j, weight)
        np.testing.assert_array_equal(incremental.pseudoinverse, before)
