"""Lease protocol tests: ownership, expiry, fencing tokens.

The invariants the distributed session tier leans on:

* at most one replica holds an unexpired lease at any moment, even
  under concurrent acquisition races;
* fencing tokens are strictly monotonic across acquisitions and never
  change on renewal;
* a released lease is adoptable immediately, an expired one after the
  TTL, a live foreign one never;
* :meth:`LeaseManager.verify` fences every stale token.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.store import (
    FencedWriteError,
    Lease,
    LeaseManager,
    LeaseRecord,
    SharedStore,
    lease_key,
)

TTL = 0.4


@pytest.fixture
def store(tmp_path):
    return SharedStore(tmp_path / "shared", fsync=False)


def manager(store, replica: str, ttl: float = TTL) -> LeaseManager:
    return LeaseManager(store, replica, ttl)


class TestAcquire:
    def test_fresh_acquire_starts_at_token_one(self, store):
        lease = manager(store, "a").acquire("s")
        assert isinstance(lease, Lease)
        assert lease.token == 1
        assert lease.remaining() > 0

    def test_reacquire_own_lease_bumps_token(self, store):
        own = manager(store, "a")
        first = own.acquire("s")
        second = own.acquire("s")
        assert second.token == first.token + 1

    def test_live_foreign_lease_blocks(self, store):
        assert manager(store, "a").acquire("s") is not None
        assert manager(store, "b").acquire("s") is None

    def test_expired_lease_is_adoptable(self, store):
        manager(store, "a", ttl=0.05).acquire("s")
        time.sleep(0.1)
        lease = manager(store, "b").acquire("s")
        assert lease is not None
        assert lease.token == 2

    def test_released_lease_is_adoptable_immediately(self, store):
        own = manager(store, "a")
        lease = own.acquire("s")
        assert own.release(lease) is True
        adopted = manager(store, "b").acquire("s")
        assert adopted is not None
        # Token monotonicity survives a graceful release.
        assert adopted.token == lease.token + 1

    def test_torn_record_protects_nobody(self, store):
        store.put(lease_key("s"), b"{not json")
        lease = manager(store, "b").acquire("s")
        assert lease is not None
        assert lease.token == 1

    def test_concurrent_acquire_one_holder(self, tmp_path):
        store = SharedStore(tmp_path / "race", fsync=False)
        racers = 6
        barrier = threading.Barrier(racers)
        holders: list[str] = []
        lock = threading.Lock()

        def race(replica: str) -> None:
            barrier.wait()
            if manager(store, replica).acquire("s") is not None:
                with lock:
                    holders.append(replica)

        threads = [
            threading.Thread(target=race, args=(f"replica-{i}",))
            for i in range(racers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(holders) == 1, f"{len(holders)} replicas won the lease"
        record = LeaseRecord.from_bytes(store.get(lease_key("s")))
        assert record.owner == holders[0]
        assert record.token == 1


class TestRenew:
    def test_renew_extends_without_bumping_token(self, store):
        own = manager(store, "a")
        lease = own.acquire("s")
        time.sleep(0.05)
        renewed = own.renew(lease)
        assert renewed is not None
        assert renewed.token == lease.token
        assert renewed.expires_at > lease.expires_at

    def test_renew_after_takeover_reports_loss(self, store):
        own = manager(store, "a", ttl=0.05)
        lease = own.acquire("s")
        time.sleep(0.1)
        assert manager(store, "b").acquire("s") is not None
        assert own.renew(lease) is None

    def test_renew_after_forget_reports_loss(self, store):
        own = manager(store, "a")
        lease = own.acquire("s")
        own.forget("s")
        assert own.renew(lease) is None


class TestFencing:
    def test_holder_token_passes(self, store):
        own = manager(store, "a")
        lease = own.acquire("s")
        own.verify("s", lease.token)  # no raise
        own.guard("s", lease.token)()  # guard form too

    def test_stale_token_fenced_after_takeover(self, store):
        own = manager(store, "a", ttl=0.05)
        lease = own.acquire("s")
        time.sleep(0.1)
        assert manager(store, "b").acquire("s") is not None
        with pytest.raises(FencedWriteError):
            own.verify("s", lease.token)

    def test_old_token_fenced_after_own_reacquire(self, store):
        own = manager(store, "a")
        old = own.acquire("s")
        own.acquire("s")  # bumps the token
        with pytest.raises(FencedWriteError):
            own.verify("s", old.token)

    def test_missing_record_fences(self, store):
        with pytest.raises(FencedWriteError):
            manager(store, "a").verify("s", 1)

    def test_expired_but_still_ours_passes(self, store):
        # Nobody adopted: the write is harmless, and failing it would
        # turn clock skew into spurious 503s.
        own = manager(store, "a", ttl=0.05)
        lease = own.acquire("s")
        time.sleep(0.1)
        own.verify("s", lease.token)  # no raise


class TestLifecycle:
    def test_release_requires_current_token(self, store):
        own = manager(store, "a")
        old = own.acquire("s")
        own.acquire("s")
        assert own.release(old) is False

    def test_forget_deletes_record(self, store):
        own = manager(store, "a")
        own.acquire("s")
        own.forget("s")
        assert own.peek("s") is None
        assert not store.exists(lease_key("s"))

    def test_ttl_must_be_positive(self, store):
        with pytest.raises(ValueError):
            LeaseManager(store, "a", 0.0)
