"""Property-based round-trip tests for graph IO and serialization."""

import string

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphs import (
    DynamicGraph,
    NodeUniverse,
    read_json,
    read_npz,
    read_temporal_edge_csv,
    snapshot_from_edges,
    write_json,
    write_npz,
    write_temporal_edge_csv,
)

_LABEL_ALPHABET = string.ascii_lowercase + string.digits + "_-."


@st.composite
def random_dynamic_graphs(draw):
    """Small random dynamic graphs with string labels and float weights."""
    num_nodes = draw(st.integers(min_value=2, max_value=8))
    labels = draw(st.lists(
        st.text(alphabet=_LABEL_ALPHABET, min_size=1, max_size=8),
        min_size=num_nodes, max_size=num_nodes, unique=True,
    ))
    universe = NodeUniverse(labels)
    num_snapshots = draw(st.integers(min_value=1, max_value=4))
    snapshots = []
    for position in range(num_snapshots):
        num_edges = draw(st.integers(min_value=0, max_value=10))
        edges = []
        for _ in range(num_edges):
            i = draw(st.integers(min_value=0, max_value=num_nodes - 1))
            j = draw(st.integers(min_value=0, max_value=num_nodes - 1))
            if i == j:
                continue
            weight = draw(st.floats(
                min_value=1e-3, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ))
            edges.append((labels[i], labels[j], weight))
        snapshots.append(
            snapshot_from_edges(edges, universe, time=f"t{position}")
        )
    return DynamicGraph(snapshots)


def _matrices_equal(a: DynamicGraph, b: DynamicGraph) -> bool:
    if len(a) != len(b):
        return False
    for s1, s2 in zip(a, b):
        if not np.allclose(s1.adjacency.toarray(),
                           s2.adjacency.toarray(), rtol=1e-12):
            return False
    return True


class TestRoundTrips:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(random_dynamic_graphs())
    def test_npz(self, tmp_path, graph):
        path = tmp_path / "g.npz"
        write_npz(graph, path)
        assert _matrices_equal(graph, read_npz(path))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(random_dynamic_graphs())
    def test_json(self, tmp_path, graph):
        path = tmp_path / "g.json"
        write_json(graph, path)
        assert _matrices_equal(graph, read_json(path))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(random_dynamic_graphs())
    def test_csv_preserves_nonempty_snapshots(self, tmp_path, graph):
        """CSV groups rows by time, so *empty* snapshots vanish; every
        snapshot with edges must round-trip exactly."""
        nonempty = [s for s in graph if s.num_edges > 0]
        if not nonempty:
            return
        path = tmp_path / "g.csv"
        write_temporal_edge_csv(graph, path)
        loaded = read_temporal_edge_csv(path)
        assert len(loaded) == len(nonempty)
        by_time = {str(s.time): s for s in nonempty}
        for snapshot in loaded:
            original = by_time[str(snapshot.time)]
            # same edge multiset (labels may reorder the universe)
            original_edges = {
                frozenset((str(u), str(v))): w
                for u, v, w in original.edge_list()
            }
            loaded_edges = {
                frozenset((str(u), str(v))): w
                for u, v, w in snapshot.edge_list()
            }
            assert original_edges.keys() == loaded_edges.keys()
            for key, weight in original_edges.items():
                assert loaded_edges[key] == pytest.approx(
                    weight, rel=1e-12
                )
