"""Pickle round-trips for every object the parallel engine ships
between processes (and for the report objects users may cache).

The multi-process engine relies on pickling worker configs, payloads,
and exceptions; users additionally pickle whole reports to disk. These
tests pin the contract: a round-trip preserves content exactly and the
snapshot fast path (``__reduce__`` via ``_from_canonical``) really does
reproduce the canonical matrix bit for bit.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    CadDetector,
    FallbackPolicy,
    FaultInjector,
    GraphSnapshot,
    NodeUniverse,
)
from repro.datasets import toy_example
from repro.graphs.sanitize import sanitize_snapshot
from repro.resilience.health import HealthMonitor


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_node_universe_roundtrip():
    universe = NodeUniverse(["alice", "bob", ("tuple", 3), 7])
    clone = roundtrip(universe)
    assert clone == universe
    assert clone.index_of(("tuple", 3)) == 2


def test_graph_snapshot_roundtrip_is_bitwise(triangle_graph):
    clone = roundtrip(triangle_graph)
    assert clone.universe == triangle_graph.universe
    assert clone.time == triangle_graph.time
    assert np.array_equal(clone.adjacency.data,
                          triangle_graph.adjacency.data)
    assert np.array_equal(clone.adjacency.indices,
                          triangle_graph.adjacency.indices)
    assert np.array_equal(clone.adjacency.indptr,
                          triangle_graph.adjacency.indptr)
    assert clone.content_digest() == triangle_graph.content_digest()


def test_snapshot_unpickle_skips_validation_but_stays_canonical():
    snapshot = GraphSnapshot(
        np.array([[0.0, 2.0], [2.0, 0.0]]), time="march"
    )
    clone = roundtrip(snapshot)
    # The fast path must still deliver a usable canonical matrix.
    assert clone.volume() == snapshot.volume()
    assert clone.num_edges == 1
    assert clone.adjacency.has_sorted_indices


def test_dynamic_graph_roundtrip(small_dynamic_graph):
    clone = roundtrip(small_dynamic_graph)
    assert len(clone) == len(small_dynamic_graph)
    assert clone.universe == small_dynamic_graph.universe
    for original, copied in zip(small_dynamic_graph, clone):
        assert np.array_equal(original.adjacency.toarray(),
                              copied.adjacency.toarray())


def test_transition_scores_and_report_roundtrip():
    toy = toy_example()
    report = CadDetector(method="exact").detect(
        toy.graph, anomalies_per_transition=4
    )
    clone = roundtrip(report)
    assert clone.detector == report.detector
    assert clone.threshold == report.threshold
    assert len(clone.transitions) == len(report.transitions)
    for original, copied in zip(report.transitions, clone.transitions):
        assert copied.anomalous_edges == original.anomalous_edges
        assert copied.anomalous_nodes == original.anomalous_nodes
        assert np.array_equal(copied.scores.edge_scores,
                              original.scores.edge_scores)
        assert np.array_equal(copied.scores.node_scores,
                              original.scores.node_scores)
        for key, value in original.scores.extras.items():
            assert np.array_equal(copied.scores.extras[key], value)


def test_sanitization_report_roundtrip():
    dirty = np.array([
        [0.0, -1.0, np.nan],
        [-1.0, 0.0, 2.0],
        [np.nan, 2.0, 5.0],
    ])
    snapshot, report = sanitize_snapshot(dirty, policy="repair")
    assert snapshot is not None
    clone = roundtrip(report)
    assert clone == report
    assert not clone.is_clean and clone.repaired


def test_health_report_roundtrip():
    monitor = HealthMonitor()
    monitor.record_solve("direct", retries=2)
    monitor.record_quarantine(position=3, time="july", reason="nan weights")
    report = monitor.report()
    clone = roundtrip(report)
    assert clone == report
    assert clone.quarantined[0].reason == "nan weights"


@pytest.mark.parametrize("obj", [
    FallbackPolicy(cg_retries=1, dense_limit=64),
    FallbackPolicy(fault_injector=FaultInjector(
        fail_solves=range(4), fail_backends=("cg", "cg-retry"),
    )),
    FaultInjector(corrupt_snapshots=(1, 2), corruption="negative", seed=5),
])
def test_resilience_config_roundtrip(obj):
    clone = roundtrip(obj)
    assert type(clone) is type(obj)
    if isinstance(obj, FaultInjector):
        # Behavioural equality: same sabotage decisions.
        assert clone.begin_solve() == obj.begin_solve()
