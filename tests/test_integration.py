"""Integration tests: full pipelines across modules.

Each test exercises a realistic end-to-end path — simulate a dataset,
run detectors, evaluate against ground truth — at a scale small enough
for CI but large enough to be meaningful.
"""

import numpy as np
import pytest

from repro import (
    ActDetector,
    AdjDetector,
    CadDetector,
    ClcDetector,
    ComDetector,
    detect,
    toy_example,
)
from repro.datasets import (
    EnronLikeSimulator,
    generate_dblp_instance,
    generate_gaussian_mixture_instance,
    generate_scalability_instance,
)
from repro.evaluation import (
    auc_score,
    compare_detectors,
    node_ranking_scores,
    rank_of,
)
from repro.graphs import read_temporal_edge_csv, write_temporal_edge_csv


class TestToyEndToEnd:
    def test_cad_beats_act_on_responsible_nodes(self):
        """Figure 3's claim: CAD's normalized scores separate the six
        responsible nodes; ACT assigns significant mass elsewhere."""
        toy = toy_example()
        cad_scores = CadDetector(method="exact").score_sequence(
            toy.graph
        )[0]
        act_scores = ActDetector(window=1).score_sequence(toy.graph)[0]
        universe = toy.graph.universe
        truth = universe.indices_of(toy.anomalous_nodes)
        mask = np.zeros(17, dtype=bool)
        mask[truth] = True

        cad_norm = cad_scores.normalized_node_scores()
        act_norm = act_scores.normalized_node_scores()
        # CAD: every responsible node far above every other node
        assert cad_norm[mask].min() > 5 * cad_norm[~mask].max()
        # ACT: overall separation strictly worse than CAD's
        act_gap = act_norm[mask].min() - act_norm[~mask].max()
        cad_gap = cad_norm[mask].min() - cad_norm[~mask].max()
        assert cad_gap > act_gap


class TestSyntheticComparison:
    def test_auc_ordering_matches_paper(self):
        """Figure 6's shape: CAD >> ADJ ~ COM ~ ACT ~ CLC."""
        instances = []
        for seed in range(3):
            instance = generate_gaussian_mixture_instance(n=240,
                                                          seed=seed)
            instances.append((instance.graph, instance.node_labels))
        results = compare_detectors(
            [
                CadDetector(method="exact", seed=0),
                AdjDetector(),
                ComDetector(method="exact"),
                ActDetector(),
                ClcDetector(),
            ],
            instances,
        )
        cad = results["CAD"].mean_auc
        assert cad > 0.85
        for name in ("ADJ", "COM", "ACT", "CLC"):
            assert cad > results[name].mean_auc + 0.1, name


class TestEnronEndToEnd:
    def test_key_player_localized(self):
        data = EnronLikeSimulator(seed=42).generate()
        detector = CadDetector(method="exact", seed=0)
        report = detector.detect(data.graph, anomalies_per_transition=5)
        hub_transition = report.transitions[31]
        assert hub_transition.is_anomalous
        assert data.key_player in hub_transition.anomalous_nodes[:3]
        # the key player carries the most anomalous edges
        counts: dict = {}
        for u, v, _ in hub_transition.anomalous_edges:
            counts[u] = counts.get(u, 0) + 1
            counts[v] = counts.get(v, 0) + 1
        top_actor = max(counts.items(), key=lambda item: item[1])[0]
        assert top_actor == data.key_player

    def test_most_turmoil_flagged_more_than_calm(self):
        data = EnronLikeSimulator(seed=42).generate()
        report = CadDetector(method="exact", seed=0).detect(
            data.graph, anomalies_per_transition=5
        )
        flagged = {t.index for t in report.anomalous_transitions()}
        turmoil_hits = len(flagged & set(data.turmoil_transitions))
        calm_hits = len(flagged & set(data.calm_transitions))
        assert turmoil_hits > calm_hits


class TestDblpEndToEnd:
    def test_cross_field_switch_top_ranked(self):
        data = generate_dblp_instance(seed=7, num_authors=300,
                                      num_fields=5)
        detector = CadDetector(method="exact", seed=0)
        scored = detector.score_sequence(data.graph)
        cross = next(e for e in data.events
                     if e.name == "cross_field_switch")
        scores = scored[cross.transition]
        index = data.graph.universe.index_of(cross.author)
        assert rank_of(index, scores.node_scores) <= 3

    def test_severity_ordering(self):
        data = generate_dblp_instance(seed=7, num_authors=300,
                                      num_fields=5)
        scored = CadDetector(method="exact", seed=0).score_sequence(
            data.graph
        )[0]
        universe = data.graph.universe
        cross = next(e for e in data.events
                     if e.name == "cross_field_switch")
        sub = next(e for e in data.events if e.name == "sub_field_switch")
        assert (
            scored.node_scores[universe.index_of(cross.author)]
            > scored.node_scores[universe.index_of(sub.author)]
        )


class TestIoRoundTripPipeline:
    def test_detect_after_csv_round_trip(self, tmp_path,
                                         small_dynamic_graph):
        path = tmp_path / "graph.csv"
        write_temporal_edge_csv(small_dynamic_graph, path)
        loaded = read_temporal_edge_csv(path)
        report = detect(loaded, detector="cad",
                        anomalies_per_transition=2, method="exact")
        edge = report.transitions[0].anomalous_edges[0]
        assert {edge[0], edge[1]} == {"0", "39"}  # labels stringified


class TestScalabilityWorkload:
    def test_instance_shape(self):
        instance = generate_scalability_instance(500, seed=0)
        assert instance.num_nodes == 500
        assert instance.graph.num_transitions == 1

    def test_cad_runs_at_scale(self):
        instance = generate_scalability_instance(3000, seed=1)
        detector = CadDetector(method="approx", k=16, seed=0)
        scores = detector.score_sequence(instance.graph)[0]
        assert scores.num_scored_edges > 0
        assert np.isfinite(scores.edge_scores).all()


class TestApproxExactConsistency:
    def test_rankings_correlate(self, small_dynamic_graph):
        exact = CadDetector(method="exact").score_sequence(
            small_dynamic_graph
        )[0]
        approx = CadDetector(method="approx", k=256,
                             seed=3).score_sequence(
            small_dynamic_graph
        )[0]
        exact_ranking = node_ranking_scores(exact)
        approx_ranking = node_ranking_scores(approx)
        labels = np.zeros(exact_ranking.size, dtype=bool)
        labels[[0, 39]] = True
        # both backends rank the injected endpoints perfectly
        assert auc_score(labels, exact_ranking) == pytest.approx(1.0)
        assert auc_score(labels, approx_ranking) == pytest.approx(1.0)
