"""Tests for streaming quarantine-and-skip and checkpoint/recovery."""

import numpy as np
import pytest

from repro.core.streaming import StreamingCadDetector
from repro.exceptions import (
    CheckpointError,
    NodeUniverseMismatchError,
    SolverError,
)
from repro.graphs import random_sparse_graph
from repro.pipeline.serialize import report_to_dict
from repro.resilience import (
    FallbackPolicy,
    FaultInjector,
    corrupt_adjacency,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.checkpoint import require_checkpoint_format


@pytest.fixture
def stream_snapshots():
    """Six 40-node connected snapshots over a shared universe."""
    return [random_sparse_graph(40, mean_degree=4.0, seed=s,
                                connected=True)
            for s in range(6)]


def _run(snapshots, **kwargs):
    detector = StreamingCadDetector(anomalies_per_transition=3, warmup=2,
                                    method="exact", **kwargs)
    for snapshot in snapshots:
        detector.push(snapshot)
    return detector


class TestQuarantineAndSkip:
    def test_corrupted_snapshot_is_quarantined(self, stream_snapshots):
        """Acceptance: a stream with one corrupted snapshot completes,
        with the bad snapshot quarantined in the HealthReport."""
        detector = StreamingCadDetector(
            anomalies_per_transition=3, warmup=2,
            sanitize="quarantine", method="exact",
        )
        for position, snapshot in enumerate(stream_snapshots):
            adjacency = snapshot.adjacency
            if position == 3:
                adjacency = corrupt_adjacency(adjacency, kind="nan",
                                              amount=2, seed=9)
            result = detector.push_raw(adjacency, time=position)
            if position == 3:
                assert result is None
        report = detector.finalize()
        assert report.health is not None
        assert len(report.health.quarantined) == 1
        record = report.health.quarantined[0]
        assert record.position == 3
        assert record.time == 3
        assert "non-finite" in record.reason
        # 5 good snapshots -> 4 transitions; stream skipped the bad one.
        assert len(report.transitions) == 4

    def test_push_raw_repairs_by_default(self, stream_snapshots):
        detector = StreamingCadDetector(anomalies_per_transition=3,
                                        warmup=2, method="exact")
        for position, snapshot in enumerate(stream_snapshots[:4]):
            adjacency = snapshot.adjacency
            if position == 1:
                adjacency = corrupt_adjacency(adjacency, kind="negative",
                                              amount=1, seed=2)
            detector.push_raw(adjacency, time=position)
        report = detector.finalize()
        assert report.health is not None
        assert report.health.snapshots_repaired == 1
        assert report.health.repairs_applied > 0
        assert len(report.transitions) == 3  # nothing skipped

    def test_solver_failure_quarantines_snapshot(self, stream_snapshots):
        # Snapshots 0 and 1 embed on solves 0..7; snapshot 2's scoring
        # starts (and, with every backend failing, ends) at solve 8.
        injector = FaultInjector(
            fail_solves=(8,),
            fail_backends=("cg", "cg-retry", "direct", "dense"),
        )
        detector = StreamingCadDetector(
            anomalies_per_transition=3, warmup=2, sanitize="repair",
            method="approx", k=4, seed=0,
            solver=FallbackPolicy(fault_injector=injector),
        )
        for snapshot in stream_snapshots[:5]:
            detector.push(snapshot)
        report = detector.finalize()
        assert report.health is not None
        assert [q.position for q in report.health.quarantined] == [2]
        assert "unscorable" in report.health.quarantined[0].reason
        # snapshots 0, 1, 3, 4 remain -> three scored transitions.
        assert len(report.transitions) == 3

    def test_solver_failure_propagates_without_policy(
            self, stream_snapshots):
        injector = FaultInjector(
            fail_solves=range(0, 8),
            fail_backends=("cg", "cg-retry", "direct", "dense"),
        )
        detector = StreamingCadDetector(
            anomalies_per_transition=3, warmup=2,
            method="approx", k=4, seed=0,
            solver=FallbackPolicy(fault_injector=injector),
        )
        detector.push(stream_snapshots[0])
        with pytest.raises(SolverError):
            detector.push(stream_snapshots[1])

    def test_universe_mismatch_still_raises(self, stream_snapshots):
        detector = StreamingCadDetector(anomalies_per_transition=3,
                                        sanitize="quarantine",
                                        method="exact")
        detector.push(stream_snapshots[0])
        with pytest.raises(NodeUniverseMismatchError):
            detector.push(random_sparse_graph(41, mean_degree=4.0,
                                              seed=0, connected=True))

    def test_bad_sanitize_value_rejected(self):
        from repro.exceptions import DetectionError

        with pytest.raises(DetectionError):
            StreamingCadDetector(sanitize="ignore")


class TestCheckpointRestore:
    def test_mid_stream_round_trip_matches_uninterrupted(
            self, stream_snapshots):
        """Acceptance: checkpoint()/restore() round-trips mid-stream and
        finalize() matches the uninterrupted run exactly."""
        uninterrupted = _run(stream_snapshots).finalize()

        first_half = StreamingCadDetector(anomalies_per_transition=3,
                                          warmup=2, method="exact")
        for snapshot in stream_snapshots[:3]:
            first_half.push(snapshot)
        state = first_half.checkpoint()

        resumed = StreamingCadDetector.restore(state, method="exact")
        assert resumed.num_transitions == 2
        for snapshot in stream_snapshots[3:]:
            resumed.push(snapshot)
        report = resumed.finalize()

        assert report.threshold == uninterrupted.threshold
        for a, b in zip(uninterrupted.transitions, report.transitions):
            assert a.anomalous_nodes == b.anomalous_nodes
            assert a.anomalous_edges == b.anomalous_edges
            np.testing.assert_array_equal(a.scores.edge_scores,
                                          b.scores.edge_scores)

    def test_file_round_trip(self, stream_snapshots, tmp_path):
        uninterrupted = _run(stream_snapshots).finalize()
        first_half = StreamingCadDetector(anomalies_per_transition=3,
                                          warmup=2, method="exact")
        for snapshot in stream_snapshots[:4]:
            first_half.push(snapshot)
        path = tmp_path / "stream.npz"
        first_half.checkpoint(path)

        resumed = StreamingCadDetector.restore(path, method="exact")
        for snapshot in stream_snapshots[4:]:
            resumed.push(snapshot)
        report = resumed.finalize()
        assert report.threshold == uninterrupted.threshold
        for a, b in zip(uninterrupted.transitions, report.transitions):
            assert a.anomalous_nodes == b.anomalous_nodes

    def test_checkpoint_preserves_config_and_health(
            self, stream_snapshots):
        detector = StreamingCadDetector(
            anomalies_per_transition=4, warmup=3,
            sanitize="quarantine", method="exact",
        )
        detector.push_raw(stream_snapshots[0].adjacency, time=0)
        detector.push_raw(
            corrupt_adjacency(stream_snapshots[1].adjacency, kind="nan",
                              seed=4),
            time=1,
        )
        state = detector.checkpoint()
        assert state["config"] == {
            "anomalies_per_transition": 4,
            "warmup": 3,
            "sanitize": "quarantine",
            "incremental": False,
        }
        restored = StreamingCadDetector.restore(state, method="exact")
        assert len(restored.health.quarantined) == 1
        assert restored.health.quarantined[0].position == 1

    def test_empty_stream_cannot_checkpoint(self):
        detector = StreamingCadDetector(method="exact")
        with pytest.raises(CheckpointError, match="nothing"):
            detector.checkpoint()

    def test_rng_state_round_trips(self, stream_snapshots):
        detector = StreamingCadDetector(anomalies_per_transition=3,
                                        method="approx", k=4, seed=11)
        for snapshot in stream_snapshots[:3]:
            detector.push(snapshot)
        state = detector.checkpoint()
        restored = StreamingCadDetector.restore(state, method="approx",
                                                k=4, seed=11)
        calculator = restored._detector.calculator
        assert calculator.rng_state() == state["rng_state"]


class TestCheckpointFiles:
    def test_unserialisable_time_label_rejected(self, tmp_path):
        snapshot = random_sparse_graph(10, mean_degree=3.0, seed=0,
                                       connected=True)
        detector = StreamingCadDetector(method="exact")
        detector.push(snapshot)
        state = detector.checkpoint()
        state["snapshots"][0]["time"] = object()
        with pytest.raises(CheckpointError, match="JSON"):
            write_checkpoint(state, tmp_path / "bad.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, values=np.arange(3))
        with pytest.raises(CheckpointError, match="not a"):
            read_checkpoint(path)

    def test_format_marker_validation(self):
        with pytest.raises(CheckpointError):
            require_checkpoint_format({"format": "something-else"})
        with pytest.raises(CheckpointError, match="version"):
            require_checkpoint_format(
                {"format": "repro-streaming-checkpoint", "version": 99}
            )

    def test_malformed_state_rejected(self):
        with pytest.raises(CheckpointError):
            StreamingCadDetector.restore({
                "format": "repro-streaming-checkpoint",
                "version": 1,
            })


class TestHealthSerialization:
    def test_report_json_embeds_health(self, stream_snapshots):
        detector = StreamingCadDetector(
            anomalies_per_transition=3, warmup=2,
            sanitize="quarantine", method="exact",
        )
        for position, snapshot in enumerate(stream_snapshots):
            adjacency = snapshot.adjacency
            if position == 2:
                adjacency = corrupt_adjacency(adjacency, kind="inf",
                                              seed=3)
            detector.push_raw(adjacency, time=position)
        document = report_to_dict(detector.finalize())
        assert document["health"]["quarantined"][0]["position"] == 2
        assert document["health"]["fallbacks_taken"] == 0

    def test_healthy_report_has_no_health_key(self, stream_snapshots):
        document = report_to_dict(_run(stream_snapshots[:4]).finalize())
        assert "health" not in document
