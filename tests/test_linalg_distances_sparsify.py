"""Unit tests for alternative distances and spectral sparsification."""

import numpy as np
import pytest

from repro.exceptions import EmbeddingError, SolverError
from repro.graphs import random_sparse_graph
from repro.linalg import (
    DISTANCE_REGISTRY,
    commute_distance_matrix,
    commute_time_matrix,
    dense_laplacian,
    effective_resistances,
    forest_distance_matrix,
    laplacian_quadratic_form,
    resistance_distance_matrix,
    shortest_path_distance_matrix,
    sparsify,
)


class TestShortestPathDistance:
    def test_path_graph(self, path_graph):
        distances = shortest_path_distance_matrix(path_graph.adjacency)
        assert distances[0, 3] == pytest.approx(3.0)
        assert distances[0, 0] == 0.0

    def test_symmetric(self, random_connected_graph):
        distances = shortest_path_distance_matrix(
            random_connected_graph.adjacency
        )
        np.testing.assert_allclose(distances, distances.T)

    def test_unreachable_finite_sentinel(self, disconnected_graph):
        distances = shortest_path_distance_matrix(
            disconnected_graph.adjacency
        )
        assert np.isfinite(distances).all()
        assert distances[0, 2] > distances[0, 1]

    def test_direct_cost_mode(self, path_graph):
        distances = shortest_path_distance_matrix(
            path_graph.adjacency, weights_are_similarities=False
        )
        assert distances[0, 3] == pytest.approx(3.0)


class TestForestDistance:
    def test_metric_properties(self, random_connected_graph):
        distances = forest_distance_matrix(
            random_connected_graph.adjacency
        )
        np.testing.assert_allclose(distances, distances.T, atol=1e-10)
        assert distances.min() >= 0.0
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-12)

    def test_disconnected_finite(self, disconnected_graph):
        distances = forest_distance_matrix(disconnected_graph.adjacency)
        assert np.isfinite(distances).all()

    def test_alpha_limits(self, random_connected_graph):
        """Large alpha approaches resistance ordering."""
        adjacency = random_connected_graph.adjacency
        forest = forest_distance_matrix(adjacency, alpha=1000.0)
        resistance = resistance_distance_matrix(adjacency)
        iu = np.triu_indices(adjacency.shape[0], k=1)
        correlation = np.corrcoef(forest[iu], resistance[iu])[0, 1]
        assert correlation > 0.99

    def test_rejects_bad_alpha(self, path_graph):
        with pytest.raises(ValueError):
            forest_distance_matrix(path_graph.adjacency, alpha=0.0)


class TestRegistry:
    def test_commute_entry_matches_commute_matrix(self,
                                                  random_connected_graph):
        adjacency = random_connected_graph.adjacency
        np.testing.assert_allclose(
            commute_distance_matrix(adjacency),
            commute_time_matrix(adjacency),
            atol=1e-7,
        )

    def test_all_entries_callable(self, path_graph):
        for name, function in DISTANCE_REGISTRY.items():
            matrix = function(path_graph.adjacency)
            assert matrix.shape == (4, 4), name
            assert np.isfinite(matrix).all(), name


class TestEffectiveResistances:
    def test_exact_matches_commute(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        rows, cols, weights, resistances = effective_resistances(
            adjacency, exact=True
        )
        commute = commute_time_matrix(adjacency)
        volume = random_connected_graph.volume()
        np.testing.assert_allclose(
            resistances, commute[rows, cols] / volume, atol=1e-9
        )
        assert weights.min() > 0

    def test_approx_close(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        _r1, _c1, _w, exact = effective_resistances(adjacency, exact=True)
        _r2, _c2, _w2, approx = effective_resistances(
            adjacency, k=512, seed=0
        )
        relative = np.abs(approx - exact) / exact
        assert np.median(relative) < 0.15

    def test_edgeless_rejected(self):
        with pytest.raises(EmbeddingError):
            effective_resistances(np.zeros((3, 3)))


class TestSparsify:
    def test_quadratic_form_preserved(self):
        graph = random_sparse_graph(120, mean_degree=12.0, seed=5,
                                    connected=True)
        sparse = sparsify(graph, num_samples=3000, k=128, seed=0)
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(10):
            x = rng.standard_normal(120)
            original = laplacian_quadratic_form(graph.adjacency, x)
            approximate = laplacian_quadratic_form(sparse.adjacency, x)
            errors.append(abs(approximate - original) / original)
        assert np.median(errors) < 0.35

    def test_reduces_edges_on_dense_input(self):
        rng = np.random.default_rng(2)
        points = rng.standard_normal((80, 2))
        from repro.graphs import gaussian_similarity_graph

        dense = gaussian_similarity_graph(points)
        sparse = sparsify(dense, num_samples=400, k=64, seed=3)
        assert sparse.num_edges < dense.num_edges / 3

    def test_universe_and_time_preserved(self, random_connected_graph):
        timed = random_connected_graph.with_time("jan")
        sparse = sparsify(timed, num_samples=300, seed=4)
        assert sparse.universe == timed.universe
        assert sparse.time == "jan"

    def test_deterministic(self, random_connected_graph):
        a = sparsify(random_connected_graph, num_samples=200, seed=7)
        b = sparsify(random_connected_graph, num_samples=200, seed=7)
        assert abs(a.adjacency - b.adjacency).max() == 0.0
