"""Smoke tests: the example scripts run and print their headlines.

The slow examples (climate: 21 exact 816-node solves; scalability:
30k-node sweeps) are exercised by the benchmark suite instead.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "anomalous edges (E_t)" in out
    assert "r7" in out and "b1" in out


def test_insider_threat():
    out = _run("insider_threat.py")
    assert "ceo_primary" in out
    assert "CAD pins the hub former" in out


def test_collaboration_shifts():
    out = _run("collaboration_shifts.py")
    assert "cross_field_switch" in out
    assert "severity ordering" in out


def test_streaming_detection():
    out = _run("streaming_detection.py")
    assert "finalized streaming == offline global-delta result: True" \
        in out


def test_serving_client():
    out = _run("serving_client.py")
    assert "booted in-process service" in out
    assert "HTTP-streamed report == offline detect() result: True" in out
