"""LAD: Laplacian signatures, robust calibration, event detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import LadDetector, laplacian_signature
from repro.detectors.lad import (
    MIN_CALIBRATION_HISTORY,
    robust_zscore,
)
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


def event_sequence(steps=9, community_size=12, seed=11, hit=6):
    """Slowly drifting graphs with a burst of cross edges at ``hit``."""
    hit = min(hit, steps - 1)
    base = community_pair_graph(community_size=community_size,
                                p_in=0.5, p_out=0.05, seed=seed)
    snapshots = [base]
    for t in range(1, steps):
        snapshots.append(perturb_weights(snapshots[-1],
                                         relative_noise=0.02,
                                         seed=seed + t))
    n = 2 * community_size
    matrix = snapshots[hit].adjacency.tolil()
    for offset in range(4):
        i, j = offset, n - 1 - offset
        matrix[i, j] = matrix[j, i] = 5.0
    snapshots[hit] = GraphSnapshot(matrix.tocsr(), base.universe)
    return DynamicGraph(snapshots)


class TestLaplacianSignature:
    def test_unit_norm_and_order(self, path_graph):
        signature = laplacian_signature(path_graph, rank=4)
        assert signature.shape == (4,)
        assert np.linalg.norm(signature) == pytest.approx(1.0)
        assert np.all(np.diff(signature) <= 1e-12)  # descending
        assert np.all(signature >= 0)

    def test_zero_padding_beyond_num_nodes(self, triangle_graph):
        signature = laplacian_signature(triangle_graph, rank=6)
        assert signature.shape == (6,)
        assert np.all(signature[3:] == 0.0)

    def test_edgeless_snapshot_is_all_zero(self):
        empty = GraphSnapshot(np.zeros((5, 5)))
        assert np.all(laplacian_signature(empty, rank=3) == 0.0)

    def test_matches_laplacian_eigenvalues(self, path_graph):
        # Path 0-1-2-3: L eigenvalues are 0, 2-sqrt(2), 2, 2+sqrt(2).
        expected = np.array([2.0 + np.sqrt(2.0), 2.0,
                             2.0 - np.sqrt(2.0)])
        expected = expected / np.linalg.norm(expected)
        signature = laplacian_signature(path_graph, rank=3)
        np.testing.assert_allclose(signature, expected, atol=1e-10)

    def test_deterministic(self, random_connected_graph):
        first = laplacian_signature(random_connected_graph, rank=8)
        second = laplacian_signature(random_connected_graph, rank=8)
        np.testing.assert_array_equal(first, second)


class TestRobustZscore:
    def test_short_history_passes_value_through(self):
        assert robust_zscore(0.7, np.array([0.1])) == pytest.approx(0.7)
        assert robust_zscore(-0.2, np.array([])) == 0.0

    def test_scales_against_mad(self):
        history = np.array([1.0, 1.1, 0.9, 1.0, 1.05, 0.95])
        assert history.size >= MIN_CALIBRATION_HISTORY
        small = robust_zscore(1.05, history)
        large = robust_zscore(3.0, history)
        assert large > small
        assert large > 3.0  # far outside the spread

    def test_clamps_downward_deviations(self):
        history = np.array([1.0, 1.1, 0.9, 1.0, 1.05])
        assert robust_zscore(0.0, history) == 0.0

    def test_constant_history_falls_back_to_unit_scale(self):
        history = np.ones(6)
        assert robust_zscore(3.0, history) == pytest.approx(2.0)


class TestLadDetector:
    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            LadDetector(rank=0)

    def test_long_window_floored_at_short(self):
        detector = LadDetector(short_window=5, long_window=2)
        assert detector._long == 5

    def test_event_peaks_at_injected_transition(self):
        graph = event_sequence(hit=6)
        detector = LadDetector(rank=8)
        scored = detector.score_sequence(graph)
        events = [float(s.extras["event_score"][0]) for s in scored]
        assert int(np.argmax(events)) == 5  # transition 5 -> snapshot 6
        assert all(np.isfinite(e) for e in events)

    def test_node_scores_are_degree_changes(self, small_dynamic_graph):
        detector = LadDetector()
        scored = detector.score_sequence(small_dynamic_graph)
        first, second = small_dynamic_graph[0], small_dynamic_graph[1]
        expected = np.abs(second.degrees() - first.degrees())
        np.testing.assert_allclose(scored[0].node_scores, expected)

    def test_score_sequence_resets_state(self):
        graph = event_sequence(steps=5)
        detector = LadDetector()
        first = detector.score_sequence(graph)
        second = detector.score_sequence(graph)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(
                a.extras["event_score"], b.extras["event_score"]
            )

    def test_detect_report_structure(self):
        graph = event_sequence(steps=6)
        report = LadDetector().detect(graph, top_nodes=3)
        assert report.detector == "LAD"
        assert len(report.transitions) == 5
        assert np.isfinite(report.threshold)
        for transition in report.transitions:
            assert len(transition.anomalous_nodes) <= 3

    def test_streaming_state_round_trip(self):
        graph = event_sequence(steps=7)
        snapshots = list(graph)
        left, right = LadDetector(), LadDetector()
        for g_t, g_t1 in zip(snapshots[:4], snapshots[1:5]):
            left.score_transition(g_t, g_t1)
        right.load_streaming_state(left.streaming_state())
        for g_t, g_t1 in zip(snapshots[4:6], snapshots[5:7]):
            a = left.score_transition(g_t, g_t1)
            b = right.score_transition(g_t, g_t1)
            np.testing.assert_array_equal(a.extras["event_score"],
                                          b.extras["event_score"])
            np.testing.assert_array_equal(a.node_scores, b.node_scores)
