"""The HTTP front: routes, error mapping, parity, graceful shutdown."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.graphs.dynamic import DynamicGraph
from repro.observability import MetricsRegistry, current_registry, disable, enable
from repro.pipeline.api import detect
from repro.pipeline.serialize import report_to_dict, snapshot_from_payload
from repro.service import SessionManager, make_server

from .test_service_sessions import entries, random_payloads


@pytest.fixture(autouse=True)
def isolated_registry():
    """Give each test a fresh global registry; restore the prior state
    (make_server enables collection process-globally)."""
    previous = current_registry()
    enable(MetricsRegistry())
    yield
    if previous is None:
        disable()
    else:
        enable(previous)


class Client:
    """Tiny JSON client over urllib (no extra dependencies)."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, dict(response.headers), \
                    self._decode(response)
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), self._decode(error)

    @staticmethod
    def _decode(response):
        payload = response.read()
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            return json.loads(payload)
        return payload.decode()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body)

    def delete(self, path):
        return self.request("DELETE", path)


@pytest.fixture
def service(tmp_path):
    server = make_server(port=0, checkpoint_dir=tmp_path,
                         max_sessions=4, max_queue=16)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, Client(server.port)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestRoutes:
    def test_health_ready_metrics(self, service):
        _, client = service
        assert client.get("/healthz")[0] == 200
        status, _, body = client.get("/readyz")
        assert (status, body["status"]) == (200, "ready")
        client.post("/sessions")
        status, headers, text = client.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_service_sessions_created_total 1" in text

    def test_unknown_routes_404(self, service):
        _, client = service
        assert client.get("/nope")[0] == 404
        assert client.post("/sessions/zzz/warp")[0] == 404
        assert client.get("/sessions/zzz")[0] == 404
        assert client.delete("/sessions/zzz")[0] == 404

    def test_bad_json_body_400(self, service):
        _, client = service
        request = urllib.request.Request(
            client.base + "/sessions", data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_bad_config_400(self, service):
        _, client = service
        status, _, body = client.post("/sessions", {"solver": "gmres"})
        assert status == 400
        assert body["error"] == "bad_request"

    def test_malformed_payload_400(self, service):
        _, client = service
        sid = client.post("/sessions")[2]["session"]
        status, _, body = client.post(
            f"/sessions/{sid}/snapshots",
            {"edges": [["a", "b"]], "nodes": ["a", "b"]},
        )
        assert status == 400
        assert "triple" in body["message"]

    def test_session_listing(self, service):
        _, client = service
        first = client.post("/sessions")[2]["session"]
        second = client.post("/sessions")[2]["session"]
        listing = client.get("/sessions")[2]
        assert {s["session"] for s in listing["sessions"]} >= \
            {first, second}


class TestStreamingParity:
    def test_http_stream_matches_offline_detect(self, service):
        _, client = service
        payloads = random_payloads(seed=21)
        sid = client.post(
            "/sessions", {"anomalies_per_transition": 2, "warmup": 2,
                          "seed": 7}
        )[2]["session"]
        per_push = []
        for payload in payloads:
            status, _, body = client.post(
                f"/sessions/{sid}/snapshots", payload
            )
            assert status == 200
            per_push.extend(
                t for t in body["transitions"] if t is not None
            )
        status, _, report = client.get(f"/sessions/{sid}/report")
        assert status == 200

        graph = DynamicGraph(
            [snapshot_from_payload(p) for p in payloads]
        )
        offline = report_to_dict(
            detect(graph, anomalies_per_transition=2, seed=7)
        )
        assert entries(report) == entries(offline)
        # Post-warmup per-push cuts agree with the finalized report on
        # the transitions they already saw at the final delta.
        final_by_index = {
            e["index"]: e for e in report["transitions"]
        }
        last = per_push[-1]
        assert entries({"transitions": [last]}) == \
            entries({"transitions": [final_by_index[last["index"]]]})

    def test_parity_across_evict_and_resume(self, tmp_path):
        payloads = random_payloads(seed=31)
        server = make_server(port=0, checkpoint_dir=tmp_path,
                             max_sessions=1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = Client(server.port)
        try:
            config = {"anomalies_per_transition": 2, "warmup": 2,
                      "seed": 7}
            sid = client.post("/sessions", config)[2]["session"]
            for payload in payloads[:4]:
                assert client.post(
                    f"/sessions/{sid}/snapshots", payload
                )[0] == 200
            # Fill the single resident slot with another session.
            other = client.post("/sessions", {"seed": 1})[2]["session"]
            client.post(f"/sessions/{other}/snapshots", payloads[0])
            assert not client.get(f"/sessions/{sid}")[2]["resident"]
            for payload in payloads[4:]:
                assert client.post(
                    f"/sessions/{sid}/snapshots", payload
                )[0] == 200
            report = client.get(f"/sessions/{sid}/report")[2]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        graph = DynamicGraph(
            [snapshot_from_payload(p) for p in payloads]
        )
        offline = report_to_dict(
            detect(graph, anomalies_per_transition=2, seed=7)
        )
        assert entries(report) == entries(offline)


class TestBackpressureHTTP:
    def test_429_carries_retry_after(self, tmp_path):
        server = make_server(port=0, checkpoint_dir=tmp_path,
                             max_queue=2)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = Client(server.port)
        try:
            payloads = random_payloads(seed=41)
            sid = client.post("/sessions")[2]["session"]
            status, headers, body = client.post(
                f"/sessions/{sid}/snapshots",
                {"snapshots": payloads[:5]},
            )
            assert status == 429
            assert body["error"] == "over_capacity"
            assert float(headers["Retry-After"]) > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestLifecycleHTTP:
    def test_finalize_and_delete(self, service):
        _, client = service
        payloads = random_payloads(seed=51)
        sid = client.post("/sessions", {"warmup": 2})[2]["session"]
        for payload in payloads:
            client.post(f"/sessions/{sid}/snapshots", payload)
        status, _, final = client.post(f"/sessions/{sid}/finalize")
        assert status == 200 and final["finalized"]
        status, _, body = client.post(
            f"/sessions/{sid}/snapshots", payloads[0]
        )
        assert status == 409 and body["error"] == "conflict"
        assert client.delete(f"/sessions/{sid}")[0] == 200
        assert client.get(f"/sessions/{sid}")[0] == 404

    def test_metrics_reflect_activity(self, service):
        _, client = service
        payloads = random_payloads(seed=61)
        sid = client.post("/sessions")[2]["session"]
        for payload in payloads[:3]:
            client.post(f"/sessions/{sid}/snapshots", payload)
        text = client.get("/metrics")[2]
        assert "repro_service_snapshots_ingested_total 3" in text
        assert "repro_service_sessions_created_total" in text
        assert 'repro_span_count{span="service.push"} 3' in text


class TestGracefulShutdown:
    def test_sigterm_drains_to_resumable_checkpoints(self, tmp_path):
        checkpoints = tmp_path / "ck"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; raise SystemExit(main())",
             "serve", "--port", "0",
             "--checkpoint-dir", str(checkpoints)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            line = process.stdout.readline()
            assert "serving on http://" in line, line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            client = Client(port)
            payloads = random_payloads(seed=71)
            sid = client.post(
                "/sessions", {"seed": 3, "warmup": 2}
            )[2]["session"]
            for payload in payloads:
                assert client.post(
                    f"/sessions/{sid}/snapshots", payload
                )[0] == 200
            expected = entries(
                client.get(f"/sessions/{sid}/report")[2]
            )
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert process.returncode == 0
        assert (checkpoints / f"{sid}.npz").exists()
        assert (checkpoints / f"{sid}.json").exists()

        revived = SessionManager(checkpoint_dir=checkpoints)
        assert entries(revived.report(sid)) == expected

    def test_sigterm_flips_readyz_before_exit(self, tmp_path):
        server = make_server(port=0, checkpoint_dir=tmp_path)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = Client(server.port)
        try:
            assert client.get("/readyz")[0] == 200
            server.manager.begin_drain()
            status, headers, _ = client.get("/readyz")
            assert status == 503
            assert headers["Retry-After"]
            status, _, body = client.post("/sessions")
            assert status == 503
            assert body["error"] == "shutting_down"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
