"""CLI tests for sanitization flags, solver selection, and exit codes."""

import pytest

from repro.cli import main


@pytest.fixture
def dirty_csv(tmp_path):
    """Three snapshots; the middle one carries a NaN weight."""
    path = tmp_path / "dirty.csv"
    path.write_text(
        "time,source,target,weight\n"
        "t0,a,b,1.0\n"
        "t0,b,c,2.0\n"
        "t0,c,d,1.0\n"
        "t1,a,b,nan\n"
        "t1,b,c,2.0\n"
        "t1,c,d,1.5\n"
        "t2,a,b,1.0\n"
        "t2,b,c,0.5\n"
        "t2,c,d,1.0\n"
    )
    return str(path)


class TestDetectSanitize:
    def test_default_repairs_and_notes(self, dirty_csv, capsys):
        assert main(["detect", dirty_csv, "-l", "1"]) == 0
        captured = capsys.readouterr()
        assert "sanitize:" in captured.err
        assert "repaired" in captured.err
        assert "non-finite" in captured.err

    def test_strict_fails_with_exit_2(self, dirty_csv, capsys):
        assert main(["detect", dirty_csv, "-l", "1", "--strict"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "rejected" in captured.err

    def test_sanitize_raise_equals_strict(self, dirty_csv):
        assert main(
            ["detect", dirty_csv, "-l", "1", "--sanitize", "raise"]
        ) == 2

    def test_quarantine_skips_snapshot(self, dirty_csv, capsys):
        assert main(
            ["detect", dirty_csv, "-l", "1", "--sanitize", "quarantine"]
        ) == 0
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        # only t0 -> t2 remains: a single transition in the summary
        assert "transitions=1" in captured.out
        assert "[t0->t2]" in captured.out

    def test_clean_input_prints_no_notes(self, tmp_path, capsys):
        path = tmp_path / "clean.csv"
        path.write_text(
            "time,source,target,weight\n"
            "t0,a,b,1.0\n"
            "t0,b,c,2.0\n"
            "t1,a,b,1.5\n"
            "t1,b,c,2.0\n"
        )
        assert main(["detect", str(path), "-l", "1"]) == 0
        assert "sanitize:" not in capsys.readouterr().err


class TestDetectSolver:
    @pytest.mark.parametrize("solver", ["cg", "direct", "fallback"])
    def test_solver_choices_run(self, dirty_csv, solver, capsys):
        assert main(
            ["detect", dirty_csv, "-l", "1", "--solver", solver]
        ) == 0
        assert "anomalous" in capsys.readouterr().out

    def test_solver_ignored_for_other_detectors(self, dirty_csv,
                                                capsys):
        # --solver is CAD-specific; other detectors simply ignore it.
        assert main(
            ["detect", dirty_csv, "-l", "1", "--detector", "adj",
             "--solver", "fallback"]
        ) == 0


class TestExitCodes:
    def test_missing_file_is_exit_1(self, capsys):
        assert main(["detect", "/nonexistent/graph.csv"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_unsupported_extension_is_exit_1(self, tmp_path, capsys):
        path = tmp_path / "graph.parquet"
        path.write_text("not a graph")
        assert main(["detect", str(path)]) == 1
        assert "unsupported" in capsys.readouterr().err
