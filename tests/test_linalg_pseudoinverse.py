"""Unit tests for exact commute times (paper eq. 3)."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.linalg import (
    commute_time_matrix,
    commute_times_for_pairs,
    effective_resistance_matrix,
    laplacian_pseudoinverse,
)


class TestPathGraphClosedForm:
    """On an unweighted path, c(i, j) = V_G * |i - j| / 1 since the
    effective resistance between i and j is exactly |i - j|."""

    def test_values(self, path_graph):
        commute = commute_time_matrix(path_graph.adjacency)
        volume = 6.0  # 3 edges, each contributing 2
        for i in range(4):
            for j in range(4):
                assert commute[i, j] == pytest.approx(
                    volume * abs(i - j), abs=1e-9
                )


class TestCommuteMatrixProperties:
    def test_symmetric_zero_diagonal(self, random_connected_graph):
        commute = commute_time_matrix(random_connected_graph.adjacency)
        np.testing.assert_allclose(commute, commute.T, atol=1e-8)
        np.testing.assert_allclose(np.diag(commute), 0.0, atol=1e-9)

    def test_non_negative(self, random_connected_graph):
        commute = commute_time_matrix(random_connected_graph.adjacency)
        assert commute.min() >= 0.0

    def test_triangle_inequality_sampled(self, random_connected_graph):
        commute = commute_time_matrix(random_connected_graph.adjacency)
        rng = np.random.default_rng(0)
        n = commute.shape[0]
        for _ in range(200):
            i, j, k = rng.integers(0, n, size=3)
            assert commute[i, j] <= commute[i, k] + commute[k, j] + 1e-6

    def test_adjacent_resistance_bounded_by_inverse_weight(self,
                                                           triangle_graph):
        resistance = effective_resistance_matrix(triangle_graph.adjacency)
        adjacency = triangle_graph.adjacency.toarray()
        for i in range(3):
            for j in range(3):
                if adjacency[i, j] > 0:
                    assert resistance[i, j] <= 1.0 / adjacency[i, j] + 1e-9

    def test_stronger_edge_shorter_commute(self):
        weak = np.array([[0.0, 1.0], [1.0, 0.0]])
        strong = np.array([[0.0, 4.0], [4.0, 0.0]])
        # resistance halves with weight 4; volume also scales, so use
        # effective resistance for the comparison
        r_weak = effective_resistance_matrix(weak)[0, 1]
        r_strong = effective_resistance_matrix(strong)[0, 1]
        assert r_strong == pytest.approx(r_weak / 4.0)


class TestDisconnected:
    def test_block_convention_finite(self, disconnected_graph):
        commute = commute_time_matrix(disconnected_graph.adjacency)
        assert np.isfinite(commute).all()
        # within-component commute times are classical
        volume = disconnected_graph.volume()
        assert commute[0, 1] == pytest.approx(volume * 1.0)

    def test_cross_component_block_algebra(self, disconnected_graph):
        """Cross-component values follow c = V_G * (l+_ii + l+_jj)."""
        commute = commute_time_matrix(disconnected_graph.adjacency)
        pseudo = laplacian_pseudoinverse(disconnected_graph.adjacency)
        volume = disconnected_graph.volume()
        expected = volume * (pseudo[0, 0] + pseudo[2, 2])
        assert commute[0, 2] == pytest.approx(expected)
        assert pseudo[0, 2] == pytest.approx(0.0, abs=1e-12)


class TestPairsApi:
    def test_matches_matrix(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        commute = commute_time_matrix(adjacency)
        rows = np.array([0, 3, 10])
        cols = np.array([5, 7, 20])
        values = commute_times_for_pairs(adjacency, rows, cols)
        np.testing.assert_allclose(values, commute[rows, cols],
                                   atol=1e-8)

    def test_reuses_pseudoinverse(self, triangle_graph):
        pseudo = laplacian_pseudoinverse(triangle_graph.adjacency)
        values = commute_times_for_pairs(
            triangle_graph.adjacency,
            np.array([0]), np.array([1]),
            pseudoinverse=pseudo,
        )
        commute = commute_time_matrix(triangle_graph.adjacency, pseudo)
        assert values[0] == pytest.approx(commute[0, 1])

    def test_shape_mismatch_raises(self, triangle_graph):
        with pytest.raises(SolverError):
            commute_times_for_pairs(
                triangle_graph.adjacency, np.array([0, 1]), np.array([1])
            )


class TestPseudoinverse:
    def test_penrose_conditions(self, random_connected_graph):
        from repro.linalg import dense_laplacian

        lap = dense_laplacian(random_connected_graph.adjacency)
        pseudo = laplacian_pseudoinverse(random_connected_graph.adjacency)
        np.testing.assert_allclose(lap @ pseudo @ lap, lap, atol=1e-6)
        np.testing.assert_allclose(pseudo @ lap @ pseudo, pseudo,
                                   atol=1e-8)

    def test_effective_resistance_needs_edges(self):
        with pytest.raises(SolverError):
            effective_resistance_matrix(np.zeros((3, 3)))
