"""The session write-ahead log: format roundtrips, torn-tail
tolerance, compaction, replay-to-exact-state after a hard kill, and
the checkpoint quarantine rules at adoption."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilience.chaos import flip_bytes, truncate_tail
from repro.service import SessionManager, SessionWal

from .test_service_sessions import entries, random_payloads


@pytest.fixture
def payloads():
    return random_payloads()


class TestWalFormat:
    def test_roundtrip(self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "abc.wal")
        wal.append_create("abc", {"seed": 3})
        last = wal.append_snapshots(payloads[:3], start_seq=0)
        assert last == 3
        contents = wal.read()
        assert contents.valid
        assert contents.session_id == "abc"
        assert contents.config == {"seed": 3}
        assert contents.compacted_through == 0
        assert [seq for seq, _, _ in contents.entries] == [1, 2, 3]
        assert contents.entries[0][1] == payloads[0]
        assert not contents.truncated
        assert contents.corrupt_lines == 0

    def test_degraded_flag_roundtrips(self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "abc.wal")
        wal.append_create("abc", {})
        wal.append_snapshots(payloads[:1], start_seq=0)
        wal.append_snapshots(payloads[1:2], start_seq=1, degraded=True)
        flags = [degraded for _, _, degraded in wal.read().entries]
        assert flags == [False, True]

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "abc.wal")
        wal.append_create("abc", {})
        wal.append_snapshots(payloads[:3], start_seq=0)
        truncate_tail(wal.path, 10)  # tear the last line mid-record
        contents = wal.read()
        assert contents.valid
        assert contents.truncated
        assert [seq for seq, _, _ in contents.entries] == [1, 2]

    def test_corrupt_middle_line_counted(self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "abc.wal")
        wal.append_create("abc", {})
        wal.append_snapshots(payloads[:2], start_seq=0)
        lines = wal.path.read_bytes().split(b"\n")
        lines[1] = b"{garbage"
        wal.path.write_bytes(b"\n".join(lines))
        contents = wal.read()
        assert contents.valid
        assert contents.corrupt_lines == 1
        assert [seq for seq, _, _ in contents.entries] == [2]

    def test_compaction_filters_entries(self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "abc.wal")
        wal.append_create("abc", {"seed": 1})
        wal.append_snapshots(payloads[:4], start_seq=0)
        wal.compact("abc", {"seed": 1}, through_seq=4)
        wal.append_snapshots(payloads[4:6], start_seq=4)
        contents = wal.read()
        assert contents.compacted_through == 4
        assert [seq for seq, _, _ in contents.entries] == [5, 6]

    def test_missing_file_reads_empty(self, tmp_path):
        contents = SessionWal(tmp_path / "nothing.wal").read()
        assert not contents.valid
        assert contents.entries == []


class TestHardKillReplay:
    """A manager that vanishes without drain() — the in-process stand
    - -in for SIGKILL/OOM — must replay to the exact pre-crash state."""

    def test_orphan_wal_rebuilds_exact_state(self, tmp_path, payloads):
        undisturbed = SessionManager(checkpoint_dir=tmp_path / "ref")
        sid_ref = undisturbed.create_session({"seed": 3})["session"]
        for payload in payloads:
            undisturbed.push(sid_ref, payload)
        expected = entries(undisturbed.report(sid_ref))

        crashed = SessionManager(checkpoint_dir=tmp_path / "crash")
        sid = crashed.create_session({"seed": 3})["session"]
        for payload in payloads[:5]:
            crashed.push(sid, payload)
        # No drain(), no checkpoint: the WAL is the only artifact a
        # SIGKILL would leave behind.
        del crashed
        revived = SessionManager(checkpoint_dir=tmp_path / "crash")
        info = revived.session_info(sid)
        assert info["pushes"] == 0  # replay is lazy, on first touch
        for payload in payloads[5:]:
            revived.push(sid, payload)
        assert entries(revived.report(sid)) == expected
        assert revived.session_info(sid)["pushes"] == len(payloads)

    def test_checkpoint_plus_wal_tail_replays(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"seed": 3})["session"]
        for payload in payloads[:4]:
            manager.push(sid, payload)
        manager.drain()  # npz + sidecar + compacted WAL
        manager = SessionManager(checkpoint_dir=tmp_path)
        for payload in payloads[4:]:
            manager.push(sid, payload)  # these live only in the WAL
        expected = entries(manager.report(sid))
        del manager  # hard kill: WAL tail never compacted
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert entries(revived.report(sid)) == expected

    def test_wal_disabled_keeps_graceful_semantics(self, tmp_path,
                                                   payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, wal=False)
        sid = manager.create_session({"seed": 3})["session"]
        for payload in payloads:
            manager.push(sid, payload)
        assert not list(Path(tmp_path).glob("*.wal"))
        manager.drain()
        revived = SessionManager(checkpoint_dir=tmp_path, wal=False)
        assert len(entries(revived.report(sid))) == len(payloads) - 1

    def test_compaction_threshold_folds_wal(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 wal_compact_every=3)
        sid = manager.create_session({"seed": 3})["session"]
        for payload in payloads[:5]:
            manager.push(sid, payload)
        wal = SessionWal(tmp_path / f"{sid}.wal")
        contents = wal.read()
        assert contents.compacted_through >= 3
        assert (tmp_path / f"{sid}.npz").exists()
        # Everything still replays/reports identically after adoption.
        expected = entries(manager.report(sid))
        del manager
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert entries(revived.report(sid)) == expected

    def test_delete_removes_wal(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({})["session"]
        manager.push(sid, payloads[0])
        assert (tmp_path / f"{sid}.wal").exists()
        manager.delete(sid)
        assert not (tmp_path / f"{sid}.wal").exists()


class TestQuarantine:
    """Corrupt startup artifacts are moved aside, never fatal."""

    @staticmethod
    def checkpointed_session(tmp_path, payloads, count=5):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"seed": 3})["session"]
        for payload in payloads[:count]:
            manager.push(sid, payload)
        manager.drain()
        return sid

    def test_truncated_npz_is_quarantined_not_fatal(self, tmp_path,
                                                    payloads):
        sid = self.checkpointed_session(tmp_path, payloads)
        truncate_tail(tmp_path / f"{sid}.npz", 64)
        revived = SessionManager(checkpoint_dir=tmp_path)  # no crash
        assert sid not in {
            info["session"]
            for info in revived.list_sessions()["sessions"]
        }
        quarantined = {p.name for p in
                       (tmp_path / "quarantine").iterdir()}
        assert f"{sid}.npz" in quarantined

    def test_flipped_npz_bytes_quarantined(self, tmp_path, payloads):
        sid = self.checkpointed_session(tmp_path, payloads)
        flip_bytes(tmp_path / f"{sid}.npz", count=32, seed=3)
        SessionManager(checkpoint_dir=tmp_path)
        assert not (tmp_path / f"{sid}.npz").exists()

    def test_corrupt_sidecar_json_quarantined(self, tmp_path, payloads):
        sid = self.checkpointed_session(tmp_path, payloads)
        (tmp_path / f"{sid}.json").write_text("{not json")
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert revived.list_sessions()["sessions"] == []
        quarantined = {p.name for p in
                       (tmp_path / "quarantine").iterdir()}
        assert f"{sid}.json" in quarantined

    def test_foreign_json_left_alone(self, tmp_path):
        foreign = tmp_path / "notes.json"
        foreign.write_text(json.dumps({"format": "something-else"}))
        SessionManager(checkpoint_dir=tmp_path)
        assert foreign.exists()

    def test_corrupt_npz_with_full_history_wal_recovers(self, tmp_path,
                                                        payloads):
        sid = self.checkpointed_session(tmp_path, payloads)
        expected = entries(
            SessionManager(checkpoint_dir=tmp_path).report(sid)
        )
        # Corrupt the checkpoint, then hand the WAL the full history
        # (as if compaction never happened before the crash).
        truncate_tail(tmp_path / f"{sid}.npz", 64)
        wal = SessionWal(tmp_path / f"{sid}.wal")
        wal.delete()
        wal.append_create(sid, {"seed": 3})
        wal.append_snapshots(payloads[:5], start_seq=0)
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert entries(revived.report(sid)) == expected

    def test_headerless_orphan_wal_quarantined(self, tmp_path):
        bad = tmp_path / "feedbeef.wal"
        bad.write_text('{"kind": "snapshot", "seq": 1, "payload": {}}\n')
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert revived.list_sessions()["sessions"] == []
        assert (tmp_path / "quarantine" / "feedbeef.wal").exists()

    def test_orphan_wal_with_watermark_but_no_npz_quarantined(
            self, tmp_path, payloads):
        wal = SessionWal(tmp_path / "cafe.wal")
        wal.append_create("cafe", {"seed": 3})
        wal.append_snapshots(payloads[:2], start_seq=0)
        wal.compact("cafe", {"seed": 3}, through_seq=2)
        revived = SessionManager(checkpoint_dir=tmp_path)
        assert revived.list_sessions()["sessions"] == []
        assert (tmp_path / "quarantine" / "cafe.wal").exists()


class TestSigkillSubprocess:
    """The real thing: SIGKILL the serving process mid-stream, restart
    on the same directory, and finish the stream — the report must be
    identical to an undisturbed run."""

    def test_sigkill_then_restart_replays_exactly(self, tmp_path):
        from .test_service_http import Client

        payloads = random_payloads(seed=71)
        checkpoints = tmp_path / "ck"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable, "-c",
            "from repro.cli import main; raise SystemExit(main())",
            "serve", "--port", "0",
            "--checkpoint-dir", str(checkpoints),
        ]

        def boot():
            process = subprocess.Popen(
                command, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True, env=env,
            )
            line = process.stdout.readline()
            assert "serving on http://" in line, line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            return process, Client(port)

        # Undisturbed baseline in-process.
        baseline = SessionManager(checkpoint_dir=tmp_path / "base")
        sid_base = baseline.create_session({"seed": 3})["session"]
        for payload in payloads:
            baseline.push(sid_base, payload)
        expected = entries(baseline.report(sid_base))

        process, client = boot()
        try:
            sid = client.post(
                "/sessions", {"seed": 3}
            )[2]["session"]
            for payload in payloads[:5]:
                assert client.post(
                    f"/sessions/{sid}/snapshots", payload
                )[0] == 200
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL

        process, client = boot()
        try:
            for payload in payloads[5:]:
                assert client.post(
                    f"/sessions/{sid}/snapshots", payload
                )[0] == 200
            status, _, report = client.get(f"/sessions/{sid}/report")
            assert status == 200
            assert entries(report) == expected
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            finally:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
