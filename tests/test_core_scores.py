"""Unit tests for CAD's ΔE/ΔN score computation."""

import numpy as np
import pytest

from repro.core import (
    CommuteTimeCalculator,
    aggregate_node_scores,
    cad_edge_scores,
)
from repro.graphs import GraphSnapshot


@pytest.fixture
def calculator():
    return CommuteTimeCalculator(method="exact")


class TestCadEdgeScores:
    def test_no_change_zero_scores(self, random_connected_graph,
                                   calculator):
        scores = cad_edge_scores(random_connected_graph,
                                 random_connected_graph, calculator)
        assert scores.total_edge_score() == 0.0
        assert scores.node_scores.max() == 0.0

    def test_product_form(self, small_dynamic_graph, calculator):
        scores = cad_edge_scores(small_dynamic_graph[0],
                                 small_dynamic_graph[1], calculator)
        product = (scores.extras["adjacency_change"]
                   * scores.extras["commute_change"])
        np.testing.assert_allclose(scores.edge_scores, product)

    def test_unchanged_edges_score_zero(self, calculator):
        """Edges whose weight did not change must score exactly 0, even
        when their commute time moved (the paper's anti-false-positive
        property vs COM)."""
        base = np.zeros((4, 4))
        for i in range(3):
            base[i, i + 1] = base[i + 1, i] = 2.0
        g_t = GraphSnapshot(base)
        changed = base.copy()
        changed[2, 3] = changed[3, 2] = 0.2  # only the last edge moves
        g_t1 = GraphSnapshot(changed, g_t.universe)
        scores = cad_edge_scores(g_t, g_t1, calculator)
        before = np.asarray(
            g_t.adjacency[scores.edge_rows, scores.edge_cols]
        ).ravel()
        after = np.asarray(
            g_t1.adjacency[scores.edge_rows, scores.edge_cols]
        ).ravel()
        unchanged = before == after
        assert unchanged.sum() == 2
        # commute times of the unchanged edges did move...
        assert np.any(scores.extras["commute_change"][unchanged] > 1e-6)
        # ...but their CAD scores are exactly zero
        assert np.all(scores.edge_scores[unchanged] == 0.0)

    def test_injected_edge_dominates(self, small_dynamic_graph,
                                     calculator):
        scores = cad_edge_scores(small_dynamic_graph[0],
                                 small_dynamic_graph[1], calculator)
        (u, v, top), *_rest = scores.top_edges(1)
        assert {u, v} == {0, 39}
        second = scores.top_edges(2)[1][2]
        assert top > 10 * second

    def test_symmetric_in_node_scores(self, small_dynamic_graph,
                                      calculator):
        scores = cad_edge_scores(small_dynamic_graph[0],
                                 small_dynamic_graph[1], calculator)
        assert scores.node_scores[0] >= scores.edge_scores.max()
        assert scores.node_scores[39] >= scores.edge_scores.max()

    def test_detector_label(self, small_dynamic_graph, calculator):
        scores = cad_edge_scores(small_dynamic_graph[0],
                                 small_dynamic_graph[1], calculator)
        assert scores.detector == "CAD"


class TestAggregateNodeScores:
    def test_basic(self):
        rows = np.array([0, 0, 1])
        cols = np.array([1, 2, 2])
        values = np.array([1.0, 2.0, 4.0])
        node_scores = aggregate_node_scores(4, rows, cols, values)
        assert node_scores.tolist() == [3.0, 5.0, 6.0, 0.0]

    def test_empty(self):
        node_scores = aggregate_node_scores(
            3, np.zeros(0, dtype=int), np.zeros(0, dtype=int), np.zeros(0)
        )
        assert node_scores.tolist() == [0.0, 0.0, 0.0]

    def test_duplicate_pairs_accumulate(self):
        rows = np.array([0, 0])
        cols = np.array([1, 1])
        values = np.array([1.0, 1.0])
        node_scores = aggregate_node_scores(2, rows, cols, values)
        assert node_scores.tolist() == [2.0, 2.0]


class TestEdgeCaseTransitions:
    def test_empty_to_nonempty(self, calculator):
        empty = GraphSnapshot(np.zeros((3, 3)))
        full = GraphSnapshot(np.array([
            [0.0, 1.0, 0.0],
            [1.0, 0.0, 1.0],
            [0.0, 1.0, 0.0],
        ]), empty.universe)
        scores = cad_edge_scores(empty, full, calculator)
        # commute times on the empty side are 0, so the score reduces
        # to |dA| * c_{t+1}; all appearing edges must be scored
        assert scores.num_scored_edges == 2
        assert np.all(scores.edge_scores > 0)

    def test_both_empty(self, calculator):
        empty = GraphSnapshot(np.zeros((3, 3)))
        other = GraphSnapshot(np.zeros((3, 3)), empty.universe)
        scores = cad_edge_scores(empty, other, calculator)
        assert scores.num_scored_edges == 0
        assert scores.total_edge_score() == 0.0
