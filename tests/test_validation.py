"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._validation import (
    as_rng,
    check_finite_float,
    check_non_negative_int,
    check_non_negative_weights,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_square,
    check_symmetric,
)
from repro.exceptions import GraphConstructionError


class TestPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            check_positive_int(2.5, "x")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, np.inf])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestFiniteFloat:
    def test_accepts_int(self):
        assert check_finite_float(2, "x") == 2.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite_float(float("nan"), "x")

    def test_rejects_string(self):
        with pytest.raises(ValueError):
            check_finite_float("abc", "x")

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")


class TestAsRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(1000) == as_rng(42).integers(1000)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestMatrixChecks:
    def test_square_rejects_rectangular(self):
        with pytest.raises(GraphConstructionError):
            check_square(np.zeros((2, 3)), "m")

    def test_square_rejects_vector(self):
        with pytest.raises(GraphConstructionError):
            check_square(np.zeros(4), "m")

    def test_symmetric_accepts_sparse(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        check_symmetric(matrix, "m")  # no raise

    def test_symmetric_rejects_asymmetric_sparse(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.5, 0.0]]))
        with pytest.raises(GraphConstructionError):
            check_symmetric(matrix, "m")

    def test_symmetric_rejects_asymmetric_dense(self):
        with pytest.raises(GraphConstructionError):
            check_symmetric(np.array([[0.0, 1.0], [0.0, 0.0]]), "m")

    def test_non_negative_rejects_negative_dense(self):
        with pytest.raises(GraphConstructionError):
            check_non_negative_weights(np.array([[0.0, -1.0],
                                                 [-1.0, 0.0]]), "m")

    def test_non_negative_accepts_empty_sparse(self):
        check_non_negative_weights(sp.csr_matrix((3, 3)), "m")
