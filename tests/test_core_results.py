"""Unit tests for TransitionScores / TransitionResult / DetectionReport."""

import numpy as np
import pytest

from repro.core import TransitionScores
from repro.core.results import DetectionReport, TransitionResult
from repro.exceptions import DetectionError
from repro.graphs import NodeUniverse


def _scores(n=4, edges=((0, 1, 2.0), (1, 2, 1.0))):
    universe = NodeUniverse.of_size(n)
    rows = np.array([e[0] for e in edges], dtype=np.int64)
    cols = np.array([e[1] for e in edges], dtype=np.int64)
    values = np.array([e[2] for e in edges])
    node_scores = np.zeros(n)
    np.add.at(node_scores, rows, values)
    np.add.at(node_scores, cols, values)
    return TransitionScores(
        universe=universe, edge_rows=rows, edge_cols=cols,
        edge_scores=values, node_scores=node_scores, detector="T",
    )


class TestTransitionScores:
    def test_validation_node_shape(self):
        universe = NodeUniverse.of_size(3)
        with pytest.raises(DetectionError):
            TransitionScores(
                universe=universe,
                edge_rows=np.zeros(0, dtype=np.int64),
                edge_cols=np.zeros(0, dtype=np.int64),
                edge_scores=np.zeros(0),
                node_scores=np.zeros(2),
            )

    def test_validation_edge_alignment(self):
        universe = NodeUniverse.of_size(3)
        with pytest.raises(DetectionError):
            TransitionScores(
                universe=universe,
                edge_rows=np.zeros(2, dtype=np.int64),
                edge_cols=np.zeros(1, dtype=np.int64),
                edge_scores=np.zeros(2),
                node_scores=np.zeros(3),
            )

    def test_top_edges_sorted(self):
        scores = _scores()
        top = scores.top_edges(2)
        assert top[0][2] >= top[1][2]
        assert top[0][:2] == (0, 1)

    def test_top_edges_empty(self):
        scores = _scores(edges=())
        assert scores.top_edges() == []

    def test_top_nodes(self):
        scores = _scores()
        top = scores.top_nodes(1)
        assert top[0][0] == 1  # node 1 touches both edges

    def test_edge_score_matrix_symmetric(self):
        matrix = _scores().edge_score_matrix()
        assert (matrix != matrix.T).nnz == 0
        assert matrix[0, 1] == 2.0

    def test_normalized_node_scores(self):
        normalized = _scores().normalized_node_scores()
        assert normalized.max() == pytest.approx(1.0)

    def test_normalized_all_zero(self):
        scores = _scores(edges=())
        assert scores.normalized_node_scores().max() == 0.0

    def test_total(self):
        assert _scores().total_edge_score() == 3.0


def _result(index=0, edges=(), nodes=()):
    return TransitionResult(
        index=index, time_from=f"m{index}", time_to=f"m{index + 1}",
        anomalous_edges=list(edges), anomalous_nodes=list(nodes),
        scores=_scores(),
    )


class TestDetectionReport:
    def test_anomalous_transitions(self):
        report = DetectionReport(
            detector="T", threshold=1.0,
            transitions=[
                _result(0),
                _result(1, edges=[(0, 1, 5.0)], nodes=[0, 1]),
            ],
        )
        flagged = report.anomalous_transitions()
        assert [t.index for t in flagged] == [1]

    def test_node_counts_and_total(self):
        report = DetectionReport(
            detector="T", threshold=1.0,
            transitions=[
                _result(0, nodes=[0, 1, 2]),
                _result(1),
            ],
        )
        assert report.node_counts().tolist() == [3, 0]
        assert report.total_anomalous_nodes() == 3

    def test_nodes_by_frequency(self):
        report = DetectionReport(
            detector="T", threshold=1.0,
            transitions=[
                _result(0, nodes=["a", "b"]),
                _result(1, nodes=["a"]),
            ],
        )
        assert report.nodes_by_frequency()[0] == ("a", 2)

    def test_summary_mentions_flagged_window(self):
        report = DetectionReport(
            detector="T", threshold=2.5,
            transitions=[_result(0, edges=[(0, 1, 5.0)], nodes=[0, 1])],
        )
        text = report.summary()
        assert "detector=T" in text
        assert "m0->m1" in text

    def test_node_only_transition_is_anomalous(self):
        result = _result(0, nodes=["x"])
        assert result.is_anomalous

    def test_empty_transition_not_anomalous(self):
        assert not _result(0).is_anomalous
