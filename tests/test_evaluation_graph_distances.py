"""Unit tests for whole-graph distance measures (Section 2.4.2)."""

import numpy as np
import pytest

from repro.evaluation import (
    GRAPH_DISTANCES,
    edit_distance,
    flag_event_transitions,
    mcs_distance,
    modality_distance,
    spectral_distance,
    transition_distance_series,
)
from repro.exceptions import EvaluationError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


@pytest.fixture
def pair():
    base = community_pair_graph(community_size=12, p_in=0.5, seed=0)
    changed = perturb_weights(base, 0.1, seed=1)
    return base, changed


class TestIdentity:
    @pytest.mark.parametrize("name", sorted(GRAPH_DISTANCES))
    def test_zero_on_identical(self, pair, name):
        g, _ = pair
        assert GRAPH_DISTANCES[name](g, g) == pytest.approx(0.0,
                                                            abs=1e-9)

    @pytest.mark.parametrize("name", sorted(GRAPH_DISTANCES))
    def test_positive_on_different(self, pair, name):
        assert GRAPH_DISTANCES[name](*pair) > 0.0

    @pytest.mark.parametrize("name", sorted(GRAPH_DISTANCES))
    def test_symmetric(self, pair, name):
        g, h = pair
        assert GRAPH_DISTANCES[name](g, h) == pytest.approx(
            GRAPH_DISTANCES[name](h, g)
        )


class TestSpecificValues:
    def test_edit_distance_counts_weight_mass(self):
        a = GraphSnapshot(np.array([[0.0, 2.0], [2.0, 0.0]]))
        b = GraphSnapshot(np.array([[0.0, 5.0], [5.0, 0.0]]),
                          a.universe)
        assert edit_distance(a, b) == pytest.approx(3.0)

    def test_mcs_disjoint_supports(self):
        a = np.zeros((3, 3))
        a[0, 1] = a[1, 0] = 1.0
        b = np.zeros((3, 3))
        b[1, 2] = b[2, 1] = 1.0
        first = GraphSnapshot(a)
        second = GraphSnapshot(b, first.universe)
        assert mcs_distance(first, second) == pytest.approx(1.0)

    def test_mcs_bounded(self, pair):
        assert 0.0 <= mcs_distance(*pair) <= 1.0

    def test_modality_on_star_change(self):
        star = np.zeros((4, 4))
        star[0, 1:] = star[1:, 0] = 1.0
        hub_shift = star.copy()
        hub_shift[0, 1] = hub_shift[1, 0] = 5.0
        first = GraphSnapshot(star)
        second = GraphSnapshot(hub_shift, first.universe)
        assert modality_distance(first, second) > 0.1

    def test_spectral_detects_component_split(self):
        path = np.zeros((4, 4))
        for i in range(3):
            path[i, i + 1] = path[i + 1, i] = 1.0
        split = path.copy()
        split[1, 2] = split[2, 1] = 0.0
        first = GraphSnapshot(path)
        second = GraphSnapshot(split, first.universe)
        assert spectral_distance(first, second) > 0.5

    def test_edgeless_graphs(self):
        a = GraphSnapshot(np.zeros((3, 3)))
        b = GraphSnapshot(np.zeros((3, 3)), a.universe)
        assert mcs_distance(a, b) == 0.0
        assert modality_distance(a, b) == 0.0


class TestSeriesAndFlagging:
    def _graph_with_event(self):
        base = community_pair_graph(community_size=12, p_in=0.5, seed=3)
        snapshots = [base]
        for t in range(5):
            snapshots.append(perturb_weights(base, 0.02, seed=60 + t))
        matrix = snapshots[3].adjacency.tolil()
        matrix[0, 23] = matrix[23, 0] = 5.0
        matrix[1, 22] = matrix[22, 1] = 5.0
        snapshots[3] = GraphSnapshot(matrix.tocsr(), base.universe)
        return DynamicGraph(snapshots)

    def test_series_length(self):
        graph = self._graph_with_event()
        series = transition_distance_series(graph, "edit")
        assert series.shape == (5,)

    def test_event_peaks_in_series(self):
        graph = self._graph_with_event()
        for name in ("edit", "spectral", "mcs"):
            series = transition_distance_series(graph, name)
            # the event appears at transition 2 and vanishes at 3
            assert np.argmax(series) in (2, 3), name

    def test_flagging(self):
        series = np.array([1.0, 1.1, 0.9, 8.0, 1.0])
        flags = flag_event_transitions(series, z_threshold=2.0)
        assert flags.tolist() == [False, False, False, True, False]

    def test_flag_constant_series(self):
        flags = flag_event_transitions(np.ones(5))
        assert not flags.any()

    def test_unknown_distance(self):
        graph = self._graph_with_event()
        with pytest.raises(EvaluationError):
            transition_distance_series(graph, "hamming")

    def test_too_short(self):
        graph = self._graph_with_event()
        with pytest.raises(EvaluationError):
            transition_distance_series(graph.subsequence(0, 1))

    def test_empty_series_flagging(self):
        with pytest.raises(EvaluationError):
            flag_event_transitions(np.zeros(0))
