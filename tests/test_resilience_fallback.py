"""Tests for the solver fallback chain, fault injection, and health."""

import numpy as np
import pytest

from repro.core.cad import CadDetector
from repro.exceptions import ConvergenceError, SolverError
from repro.graphs import DynamicGraph, random_sparse_graph
from repro.linalg import LaplacianSolver, make_solver
from repro.resilience import (
    DEFAULT_POLICY,
    FallbackPolicy,
    FallbackSolver,
    FaultInjector,
    HealthMonitor,
    corrupt_adjacency,
)
from repro.resilience.fallback import resolve_policy


class TestFallbackPolicy:
    def test_default_chain(self, random_connected_graph):
        solver = FallbackSolver(random_connected_graph.adjacency)
        assert solver.backends == (
            "cg", "cg-retry", "cg-retry", "direct", "dense",
        )

    def test_no_retries_no_direct(self, random_connected_graph):
        policy = FallbackPolicy(cg_retries=0, use_direct=False)
        solver = FallbackSolver(random_connected_graph.adjacency,
                                policy=policy)
        assert solver.backends == ("cg", "dense")

    def test_dense_limit_excludes_dense(self, random_connected_graph):
        policy = FallbackPolicy(dense_limit=10)  # graph has 60 nodes
        solver = FallbackSolver(random_connected_graph.adjacency,
                                policy=policy)
        assert "dense" not in solver.backends

    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackPolicy(cg_retries=-1)
        with pytest.raises(ValueError):
            FallbackPolicy(dense_limit=-5)
        with pytest.raises(Exception):
            FallbackPolicy(tol_relaxation=0.0)

    def test_resolve_policy(self):
        assert resolve_policy("fallback") is DEFAULT_POLICY
        tuned = FallbackPolicy(cg_retries=1)
        assert resolve_policy(tuned) is tuned
        with pytest.raises(SolverError):
            resolve_policy("magic")


class TestFallbackSolver:
    def test_matches_reference_without_faults(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        fallback = FallbackSolver(adjacency, tol=1e-12)
        reference = LaplacianSolver(adjacency, method="cg", tol=1e-12)
        b = np.random.default_rng(3).standard_normal(adjacency.shape[0])
        np.testing.assert_allclose(fallback.solve(b), reference.solve(b),
                                   atol=1e-10)

    def test_healthy_solves_served_by_cg(self, random_connected_graph):
        health = HealthMonitor()
        solver = FallbackSolver(random_connected_graph.adjacency,
                                health=health)
        solver.solve(np.random.default_rng(0).standard_normal(60))
        report = health.report()
        assert report.solves_by_backend == {"cg": 1}
        assert report.fallbacks_taken == 0
        assert report.is_empty()

    def test_cg_failure_escalates_to_retry(self, random_connected_graph):
        injector = FaultInjector(fail_solves=(0,), fail_backends=("cg",))
        health = HealthMonitor()
        solver = FallbackSolver(
            random_connected_graph.adjacency,
            policy=FallbackPolicy(fault_injector=injector),
            health=health,
        )
        b = np.random.default_rng(1).standard_normal(60)
        x = solver.solve(b)
        reference = LaplacianSolver(random_connected_graph.adjacency,
                                    method="direct").solve(b)
        np.testing.assert_allclose(x, reference, atol=1e-5)
        report = health.report()
        assert report.solves_by_backend == {"cg-retry": 1}
        assert report.retries_spent == 1
        assert report.fallbacks_taken == 1

    def test_cg_and_retries_failing_reaches_direct(
            self, random_connected_graph):
        injector = FaultInjector(fail_solves=(0,),
                                 fail_backends=("cg", "cg-retry"))
        health = HealthMonitor()
        solver = FallbackSolver(
            random_connected_graph.adjacency,
            policy=FallbackPolicy(fault_injector=injector),
            health=health,
        )
        b = np.random.default_rng(2).standard_normal(60)
        x = solver.solve(b)
        reference = LaplacianSolver(random_connected_graph.adjacency,
                                    method="direct").solve(b)
        np.testing.assert_allclose(x, reference, atol=1e-8)
        report = health.report()
        assert report.solves_by_backend == {"direct": 1}
        assert report.retries_spent == 3  # cg + 2 retries all failed

    def test_whole_chain_exhausted_raises(self, random_connected_graph):
        injector = FaultInjector(
            fail_solves=(0,),
            fail_backends=("cg", "cg-retry", "direct", "dense"),
        )
        health = HealthMonitor()
        solver = FallbackSolver(
            random_connected_graph.adjacency,
            policy=FallbackPolicy(fault_injector=injector),
            health=health,
        )
        with pytest.raises(SolverError, match="fallback backends failed"):
            solver.solve(np.zeros(60) + np.arange(60))
        report = health.report()
        assert report.failed_solves == 1
        # A later solve succeeds again: faults are per solve index.
        b = np.random.default_rng(4).standard_normal(60)
        solver.solve(b)
        assert health.report().solves_by_backend == {"cg": 1}

    def test_rhs_shape_rejected_without_escalation(
            self, random_connected_graph):
        injector = FaultInjector(fail_solves=(0,))
        solver = FallbackSolver(
            random_connected_graph.adjacency,
            policy=FallbackPolicy(fault_injector=injector),
        )
        with pytest.raises(SolverError, match="shape"):
            solver.solve(np.zeros(7))
        with pytest.raises(SolverError, match="shape"):
            solver.solve_many(np.zeros((7, 2)))
        with pytest.raises(SolverError, match="align"):
            solver.commute_times_for_pairs(np.array([0, 1]),
                                           np.array([2]))
        # No solve was issued for the malformed inputs.
        assert injector.solves_issued == 0

    def test_commute_times_match_plain_solver(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        fallback = FallbackSolver(adjacency, tol=1e-12)
        plain = LaplacianSolver(adjacency, method="direct")
        rows = np.array([0, 5, 12])
        cols = np.array([7, 5, 30])
        np.testing.assert_allclose(
            fallback.commute_times_for_pairs(rows, cols),
            plain.commute_times_for_pairs(rows, cols),
            atol=1e-6,
        )

    def test_component_accessors(self, disconnected_graph):
        solver = FallbackSolver(disconnected_graph.adjacency)
        assert solver.num_components == 2
        assert solver.component_labels.shape == (4,)


class TestMakeSolver:
    def test_plain_methods(self, path_graph):
        assert isinstance(make_solver(path_graph.adjacency, "cg"),
                          LaplacianSolver)
        assert isinstance(make_solver(path_graph.adjacency, "direct"),
                          LaplacianSolver)

    def test_fallback_values(self, path_graph):
        assert isinstance(make_solver(path_graph.adjacency, "fallback"),
                          FallbackSolver)
        policy = FallbackPolicy(cg_retries=1)
        assert isinstance(make_solver(path_graph.adjacency, policy),
                          FallbackSolver)

    def test_unknown_rejected(self, path_graph):
        with pytest.raises(SolverError):
            make_solver(path_graph.adjacency, "magic")


class TestFaultInjector:
    def test_check_backend_targets_only_configured_pairs(self):
        injector = FaultInjector(fail_solves=(1,), fail_backends=("cg",))
        injector.check_backend(0, "cg")  # untargeted solve: no raise
        injector.check_backend(1, "direct")  # untargeted backend
        with pytest.raises(ConvergenceError, match="injected fault"):
            injector.check_backend(1, "cg")

    def test_maybe_corrupt_passthrough_and_determinism(
            self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        injector = FaultInjector(corrupt_snapshots=(2,), corruption="nan",
                                 seed=5)
        assert injector.maybe_corrupt(adjacency, 0) is adjacency
        first = injector.maybe_corrupt(adjacency, 2)
        second = injector.maybe_corrupt(adjacency, 2)
        assert np.isnan(first.data).any()
        np.testing.assert_array_equal(
            np.isnan(first.data), np.isnan(second.data)
        )

    def test_rejects_unknown_corruption(self):
        with pytest.raises(ValueError):
            FaultInjector(corruption="melt")


class TestCorruptAdjacency:
    @pytest.mark.parametrize("kind,predicate", [
        ("nan", lambda m: np.isnan(m.data).any()),
        ("inf", lambda m: np.isinf(m.data).any()),
        ("negative", lambda m: (m.data < 0).any()),
        ("self_loops", lambda m: np.count_nonzero(m.diagonal()) > 0),
    ])
    def test_kinds(self, random_connected_graph, kind, predicate):
        corrupted = corrupt_adjacency(random_connected_graph.adjacency,
                                      kind=kind, amount=2, seed=3)
        assert predicate(corrupted)

    def test_asymmetric(self, random_connected_graph):
        corrupted = corrupt_adjacency(random_connected_graph.adjacency,
                                      kind="asymmetric", seed=3)
        difference = (corrupted - corrupted.T).tocoo()
        assert np.count_nonzero(difference.data) > 0

    def test_unknown_kind(self, path_graph):
        with pytest.raises(ValueError):
            corrupt_adjacency(path_graph.adjacency, kind="melt")

    def test_edgeless_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            corrupt_adjacency(np.zeros((3, 3)), kind="nan")


class TestDetectorUnderFaults:
    def test_report_identical_despite_solver_failure(self):
        """Acceptance: a failed first-choice solve changes nothing in the
        anomaly sets — only the health accounting."""
        snapshots = [random_sparse_graph(50, mean_degree=5.0, seed=s,
                                         connected=True)
                     for s in range(4)]
        graph = DynamicGraph(snapshots)
        healthy = CadDetector(method="approx", k=16, seed=7).detect(
            graph, anomalies_per_transition=3
        )
        injector = FaultInjector(fail_solves=(0, 5),
                                 fail_backends=("cg", "cg-retry"))
        faulty = CadDetector(
            method="approx", k=16, seed=7,
            solver=FallbackPolicy(fault_injector=injector),
        ).detect(graph, anomalies_per_transition=3)

        assert healthy.health is None
        assert faulty.health is not None
        assert faulty.health.solves_by_backend.get("direct") == 2
        # The direct backend answers within the CG tolerance, so the
        # discrete anomaly sets are unchanged (scores may move in the
        # last few bits).
        assert faulty.threshold == pytest.approx(healthy.threshold,
                                                 rel=1e-6)
        for a, b in zip(healthy.transitions, faulty.transitions):
            assert a.anomalous_nodes == b.anomalous_nodes
            assert ([(u, v) for u, v, _ in a.anomalous_edges]
                    == [(u, v) for u, v, _ in b.anomalous_edges])

    def test_health_line_in_summary(self):
        snapshots = [random_sparse_graph(30, mean_degree=4.0, seed=s,
                                         connected=True)
                     for s in range(3)]
        graph = DynamicGraph(snapshots)
        injector = FaultInjector(fail_solves=(0,), fail_backends=("cg",))
        report = CadDetector(
            method="approx", k=12, seed=1,
            solver=FallbackPolicy(fault_injector=injector),
        ).detect(graph, anomalies_per_transition=2)
        assert report.summary().splitlines()[-1].startswith("health:")


class TestHealthReport:
    def test_describe_mentions_everything(self):
        monitor = HealthMonitor()
        monitor.record_solve("cg")
        monitor.record_solve("direct", retries=3)
        monitor.record_failed_solve(retries=4)
        monitor.record_quarantine(2, "t2", "nan weights")
        monitor.record_repair(entries_fixed=5)
        report = monitor.report()
        text = report.describe()
        assert "fallbacks=1" in text
        assert "retries=7" in text
        assert "quarantined=1" in text
        assert "repaired=1" in text
        assert "failed_solves=1" in text
        assert "direct:1" in text
        assert report.total_solves == 2
        assert not report.is_empty()

    def test_state_round_trip(self):
        monitor = HealthMonitor()
        monitor.record_solve("dense", retries=2)
        monitor.record_quarantine(1, None, "bad")
        restored = HealthMonitor()
        restored.load_state(monitor.state())
        assert restored.report() == monitor.report()
