"""Tests for the Gaussian-mixture synthetic benchmark (Section 4.1)."""

import numpy as np
import pytest

from repro.core import CadDetector
from repro.datasets import generate_gaussian_mixture_instance
from repro.evaluation import auc_score, node_ranking_scores
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def instance():
    return generate_gaussian_mixture_instance(n=240, seed=0)


class TestGeneration:
    def test_shapes(self, instance):
        assert instance.points.shape == (240, 2)
        assert instance.components.shape == (240,)
        assert len(instance.graph) == 2

    def test_cross_edges_cross_components(self, instance):
        assert np.all(
            instance.components[instance.anomalous_edge_rows]
            != instance.components[instance.anomalous_edge_cols]
        )

    def test_benign_edges_within_components(self, instance):
        assert np.all(
            instance.components[instance.benign_edge_rows]
            == instance.components[instance.benign_edge_cols]
        )

    def test_node_labels_match_cross_edges(self, instance):
        expected = np.zeros(240, dtype=bool)
        expected[instance.anomalous_edge_rows] = True
        expected[instance.anomalous_edge_cols] = True
        np.testing.assert_array_equal(instance.node_labels, expected)

    def test_minority_anomalous(self, instance):
        assert 0 < instance.num_anomalous_nodes < 240 // 3

    def test_deterministic(self):
        a = generate_gaussian_mixture_instance(n=100, seed=5)
        b = generate_gaussian_mixture_instance(n=100, seed=5)
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.node_labels, b.node_labels)

    def test_first_snapshot_dense(self, instance):
        # all-pairs similarity graph: every off-diagonal weight present
        assert instance.graph[0].num_edges == 240 * 239 // 2

    def test_rejects_tiny_n(self):
        with pytest.raises(DatasetError):
            generate_gaussian_mixture_instance(n=4)

    def test_rejects_bad_noise_range(self):
        with pytest.raises(DatasetError):
            generate_gaussian_mixture_instance(
                n=50, noise_low=0.9, noise_high=0.5
            )


class TestCadSignal:
    def test_cad_auc_high(self, instance):
        detector = CadDetector(method="exact", seed=0)
        scores = detector.score_sequence(instance.graph)[0]
        ranking = node_ranking_scores(scores, "max_edge")
        assert auc_score(instance.node_labels, ranking) > 0.85

    def test_adj_auc_low(self, instance):
        from repro.baselines import AdjDetector

        scores = AdjDetector().score_sequence(instance.graph)[0]
        ranking = node_ranking_scores(scores, "max_edge")
        assert auc_score(instance.node_labels, ranking) < 0.75
