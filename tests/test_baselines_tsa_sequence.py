"""Unit tests for the ARMA event baseline and timeline evaluation."""

import numpy as np
import pytest

from repro.baselines import (
    ArmaEventDetector,
    ar_residuals,
    fit_ar_coefficients,
)
from repro.core import CadDetector
from repro.core.results import DetectionReport, TransitionResult
from repro.evaluation import evaluate_timeline, summarize_timeline
from repro.exceptions import DetectionError, EvaluationError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


class TestArFit:
    def test_recovers_ar1(self):
        rng = np.random.default_rng(0)
        series = np.zeros(400)
        for t in range(1, 400):
            series[t] = 0.7 * series[t - 1] + 0.05 * rng.standard_normal()
        coefficients = fit_ar_coefficients(series, order=1)
        assert coefficients[0] == pytest.approx(0.7, abs=0.08)

    def test_constant_series_zero_residuals(self):
        series = np.full(30, 5.0)
        residuals = ar_residuals(series, order=2)
        np.testing.assert_allclose(residuals, 0.0, atol=1e-8)

    def test_too_short_raises(self):
        with pytest.raises(EvaluationError):
            fit_ar_coefficients(np.arange(3.0), order=2)


class TestArmaEventDetector:
    def _graph(self, event=True):
        base = community_pair_graph(community_size=12, p_in=0.5, seed=1)
        snapshots = [base]
        for t in range(9):
            snapshots.append(
                perturb_weights(base, 0.03, seed=80 + t)
            )
        if event:
            matrix = snapshots[7].adjacency.tolil()
            matrix[0, 23] = matrix[23, 0] = 6.0
            matrix[1, 20] = matrix[20, 1] = 6.0
            snapshots[7] = GraphSnapshot(matrix.tocsr(), base.universe)
        return DynamicGraph(snapshots)

    def test_event_peaks(self):
        detector = ArmaEventDetector(distance="edit", order=1)
        scores = detector.event_scores(self._graph())
        # the event enters at transition 6 and leaves at 7
        assert int(np.argmax(scores)) in (6, 7)

    def test_flags_event_only_mostly(self):
        detector = ArmaEventDetector(distance="edit", order=1,
                                     z_threshold=3.0)
        flags = detector.flagged_transitions(self._graph())
        assert flags[6] or flags[7]
        assert flags.sum() <= 3

    def test_quiet_graph_flags_nothing_extreme(self):
        detector = ArmaEventDetector(distance="edit", order=1,
                                     z_threshold=6.0)
        flags = detector.flagged_transitions(self._graph(event=False))
        assert flags.sum() == 0

    def test_too_short_sequence(self):
        graph = self._graph().subsequence(0, 3)
        with pytest.raises(DetectionError):
            ArmaEventDetector(order=2).event_scores(graph)

    def test_warmup_scores_zero(self):
        detector = ArmaEventDetector(distance="edit", order=2)
        scores = detector.event_scores(self._graph())
        assert scores[0] == 0.0 and scores[1] == 0.0


class TestTimelineEvaluation:
    def _report(self, flags):
        transitions = []
        for index in range(6):
            nodes = [f"actor_{index}"] if index in flags else []
            transitions.append(TransitionResult(
                index=index, time_from=index, time_to=index + 1,
                anomalous_edges=[], anomalous_nodes=nodes,
                scores=None,
            ))
        return DetectionReport(detector="T", threshold=1.0,
                               transitions=transitions)

    def test_perfect_report(self):
        report = self._report({1, 4})
        evaluation = evaluate_timeline(
            report, {1, 4}, lambda t: {f"actor_{t}"},
        )
        assert evaluation.transition_metrics.precision == 1.0
        assert evaluation.transition_metrics.recall == 1.0
        assert evaluation.actor_recall == 1.0

    def test_tolerant_precision(self):
        report = self._report({1, 2})
        evaluation = evaluate_timeline(
            report, {1}, lambda t: {f"actor_{t}"},
            acceptable_transitions={1, 2},
        )
        assert evaluation.transition_metrics.precision == 0.5
        assert evaluation.tolerant_precision == 1.0

    def test_missing_actor_lowers_recall(self):
        report = self._report({1})
        evaluation = evaluate_timeline(
            report, {1, 4}, lambda t: {f"actor_{t}"},
        )
        assert evaluation.actor_recall == 0.5

    def test_empty_truth_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_timeline(self._report(set()), set(), lambda t: set())

    def test_summary_readable(self):
        report = self._report({1})
        evaluation = evaluate_timeline(
            report, {1}, lambda t: {f"actor_{t}"},
        )
        text = summarize_timeline(evaluation)
        assert "precision" in text and "actors named" in text

    def test_on_enron_simulator(self):
        from repro.datasets import EnronLikeSimulator

        data = EnronLikeSimulator(seed=42).generate()
        report = CadDetector(method="exact", seed=0).detect(
            data.graph, anomalies_per_transition=5
        )
        evaluation = evaluate_timeline(
            report,
            data.ground_truth_transitions(),
            data.ground_truth_actors,
            acceptable_transitions=data.active_event_transitions(),
        )
        assert evaluation.tolerant_precision > 0.6
        assert evaluation.actor_recall > 0.4
