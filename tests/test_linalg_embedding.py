"""Unit tests for the approximate commute-time embedding."""

import numpy as np
import pytest

from repro.exceptions import EmbeddingError
from repro.linalg import (
    CommuteTimeEmbedding,
    commute_time_matrix,
    suggest_embedding_dimension,
)


class TestEmbeddingAccuracy:
    def test_high_k_small_error(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        exact = commute_time_matrix(adjacency)
        embedding = CommuteTimeEmbedding(adjacency, k=400, seed=0)
        approx = embedding.commute_time_matrix()
        iu = np.triu_indices(adjacency.shape[0], k=1)
        relative = np.abs(approx[iu] - exact[iu]) / exact[iu]
        assert np.median(relative) < 0.15

    def test_error_decreases_with_k(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        exact = commute_time_matrix(adjacency)
        iu = np.triu_indices(adjacency.shape[0], k=1)

        def median_error(k: int) -> float:
            approx = CommuteTimeEmbedding(
                adjacency, k=k, seed=1
            ).commute_time_matrix()
            return float(np.median(np.abs(approx[iu] - exact[iu])
                                   / exact[iu]))

        assert median_error(256) < median_error(8)

    @pytest.mark.parametrize("solver", ["cg", "direct"])
    def test_solver_backends_agree(self, random_connected_graph, solver):
        adjacency = random_connected_graph.adjacency
        embedding = CommuteTimeEmbedding(
            adjacency, k=64, seed=3, solver=solver
        )
        exact = commute_time_matrix(adjacency)
        approx = embedding.commute_time_matrix()
        iu = np.triu_indices(adjacency.shape[0], k=1)
        relative = np.abs(approx[iu] - exact[iu]) / exact[iu]
        assert np.median(relative) < 0.35


class TestEmbeddingApi:
    def test_points_shape(self, random_connected_graph):
        embedding = CommuteTimeEmbedding(
            random_connected_graph.adjacency, k=17, seed=0
        )
        assert embedding.points.shape == (
            random_connected_graph.num_nodes, 17,
        )
        assert embedding.k == 17

    def test_pair_query_matches_matrix(self, random_connected_graph):
        embedding = CommuteTimeEmbedding(
            random_connected_graph.adjacency, k=32, seed=0
        )
        matrix = embedding.commute_time_matrix()
        rows = np.array([0, 5])
        cols = np.array([9, 12])
        np.testing.assert_allclose(
            embedding.commute_times(rows, cols),
            matrix[rows, cols], atol=1e-8,
        )

    def test_deterministic_with_seed(self, random_connected_graph):
        a = CommuteTimeEmbedding(random_connected_graph.adjacency,
                                 k=16, seed=5).points
        b = CommuteTimeEmbedding(random_connected_graph.adjacency,
                                 k=16, seed=5).points
        np.testing.assert_array_equal(a, b)

    def test_volume_property(self, random_connected_graph):
        embedding = CommuteTimeEmbedding(
            random_connected_graph.adjacency, k=16, seed=0
        )
        assert embedding.volume == pytest.approx(
            random_connected_graph.volume()
        )

    def test_rejects_edgeless(self):
        with pytest.raises(EmbeddingError):
            CommuteTimeEmbedding(np.zeros((4, 4)), k=8)

    def test_pair_shape_mismatch(self, random_connected_graph):
        embedding = CommuteTimeEmbedding(
            random_connected_graph.adjacency, k=8, seed=0
        )
        with pytest.raises(EmbeddingError):
            embedding.commute_times(np.array([0, 1]), np.array([1]))


class TestDisconnectedEmbedding:
    def test_matches_block_convention(self, disconnected_graph):
        adjacency = disconnected_graph.adjacency
        exact = commute_time_matrix(adjacency)
        embedding = CommuteTimeEmbedding(adjacency, k=800, seed=2)
        approx = embedding.commute_time_matrix()
        # within-component distances approximate the classical commute
        assert approx[0, 1] == pytest.approx(exact[0, 1], rel=0.3)
        # cross-component values follow the same block convention
        assert approx[0, 2] == pytest.approx(exact[0, 2], rel=0.3)


class TestSuggestDimension:
    def test_grows_with_n(self):
        assert suggest_embedding_dimension(10**6) >= \
            suggest_embedding_dimension(10**2)

    def test_bounds(self):
        assert 16 <= suggest_embedding_dimension(10) <= 200
        assert suggest_embedding_dimension(10**9, epsilon=0.1) == 200

    def test_rejects_bad_epsilon(self):
        with pytest.raises(EmbeddingError):
            suggest_embedding_dimension(100, epsilon=0.0)
