"""Invariance property tests for the CAD pipeline.

Two structural symmetries that any correct implementation must honour:

* **permutation equivariance** — relabelling the nodes permutes every
  score, nothing more;
* **scale behaviour** — multiplying all weights by c > 0 leaves
  commute times unchanged (volume scales by c, resistances by 1/c),
  so ΔE scales exactly linearly in c and every *ranking* is invariant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import CadDetector, cad_edge_scores, CommuteTimeCalculator
from repro.graphs import DynamicGraph, GraphSnapshot
from repro.linalg import commute_time_matrix


def _random_transition(seed, n=14):
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    order = rng.permutation(n)
    for a, b in zip(order[:-1], order[1:]):
        adjacency[a, b] = adjacency[b, a] = rng.uniform(0.5, 2.0)
    for _ in range(2 * n):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            adjacency[i, j] = adjacency[j, i] = rng.uniform(0.5, 2.0)
    changed = adjacency.copy()
    for _ in range(3):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            changed[i, j] = changed[j, i] = rng.uniform(0.0, 3.0)
    return adjacency, changed


class TestPermutationEquivariance:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_node_scores_permute(self, seed):
        adjacency, changed = _random_transition(seed)
        n = adjacency.shape[0]
        rng = np.random.default_rng(seed + 1)
        permutation = rng.permutation(n)

        calculator = CommuteTimeCalculator(method="exact")
        g_t = GraphSnapshot(adjacency)
        g_t1 = GraphSnapshot(changed, g_t.universe)
        original = cad_edge_scores(g_t, g_t1, calculator).node_scores

        shuffled_t = GraphSnapshot(
            adjacency[np.ix_(permutation, permutation)]
        )
        shuffled_t1 = GraphSnapshot(
            changed[np.ix_(permutation, permutation)],
            shuffled_t.universe,
        )
        permuted = cad_edge_scores(
            shuffled_t, shuffled_t1, CommuteTimeCalculator(method="exact")
        ).node_scores
        np.testing.assert_allclose(permuted, original[permutation],
                                   rtol=1e-6, atol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_commute_matrix_permutes(self, seed):
        adjacency, _ = _random_transition(seed)
        n = adjacency.shape[0]
        permutation = np.random.default_rng(seed).permutation(n)
        commute = commute_time_matrix(adjacency)
        permuted = commute_time_matrix(
            adjacency[np.ix_(permutation, permutation)]
        )
        np.testing.assert_allclose(
            permuted, commute[np.ix_(permutation, permutation)],
            atol=1e-7,
        )


class TestScaleBehaviour:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.1, max_value=20.0))
    def test_commute_times_scale_invariant(self, seed, scale):
        adjacency, _ = _random_transition(seed)
        base = commute_time_matrix(adjacency)
        scaled = commute_time_matrix(scale * adjacency)
        np.testing.assert_allclose(scaled, base, rtol=1e-7, atol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.2, max_value=10.0))
    def test_cad_scores_scale_linearly(self, seed, scale):
        adjacency, changed = _random_transition(seed)
        calculator = CommuteTimeCalculator(method="exact")

        g_t = GraphSnapshot(adjacency)
        g_t1 = GraphSnapshot(changed, g_t.universe)
        base = cad_edge_scores(g_t, g_t1, calculator)

        s_t = GraphSnapshot(scale * adjacency)
        s_t1 = GraphSnapshot(scale * changed, s_t.universe)
        scaled = cad_edge_scores(
            s_t, s_t1, CommuteTimeCalculator(method="exact")
        )
        np.testing.assert_allclose(
            scaled.edge_scores, scale * base.edge_scores,
            rtol=1e-6, atol=1e-8,
        )

    def test_detected_sets_scale_invariant(self, small_dynamic_graph):
        """Rankings (hence anomaly sets at matched budgets) survive a
        global rescaling of the interaction counts."""
        detector = CadDetector(method="exact")
        base = detector.detect(small_dynamic_graph,
                               anomalies_per_transition=2)
        scaled_graph = DynamicGraph([
            GraphSnapshot(3.0 * s.adjacency.toarray(),
                          small_dynamic_graph.universe)
            for s in small_dynamic_graph
        ])
        scaled = detector.detect(scaled_graph,
                                 anomalies_per_transition=2)
        assert (
            base.transitions[0].anomalous_nodes
            == scaled.transitions[0].anomalous_nodes
        )
