"""Unit tests for random graph generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    community_pair_graph,
    is_connected,
    perturb_weights,
    random_sparse_graph,
    random_symmetric_noise,
    stochastic_block_model,
)


class TestRandomSparseGraph:
    def test_edge_count_near_target(self):
        graph = random_sparse_graph(1000, mean_degree=4.0, seed=0)
        assert 1500 <= graph.num_edges <= 2500

    def test_connected_flag(self):
        graph = random_sparse_graph(200, mean_degree=1.0, seed=1,
                                    connected=True)
        assert is_connected(graph)

    def test_weight_range(self):
        graph = random_sparse_graph(100, seed=2, weight_low=2.0,
                                    weight_high=3.0)
        weights = graph.adjacency.data
        assert weights.min() >= 2.0
        assert weights.max() < 3.0

    def test_deterministic(self):
        a = random_sparse_graph(50, seed=3)
        b = random_sparse_graph(50, seed=3)
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_bad_weight_range(self):
        with pytest.raises(GraphConstructionError):
            random_sparse_graph(10, weight_low=2.0, weight_high=1.0)

    def test_single_node(self):
        graph = random_sparse_graph(1, seed=0)
        assert graph.num_edges == 0


class TestStochasticBlockModel:
    def test_community_structure(self):
        graph = stochastic_block_model([40, 40], 0.5, 0.01, seed=0)
        adjacency = graph.adjacency.toarray()
        intra = adjacency[:40, :40]
        inter = adjacency[:40, 40:]
        assert (intra > 0).mean() > 5 * (inter > 0).mean()

    def test_weights(self):
        graph = stochastic_block_model([10, 10], 1.0, 1.0,
                                       weight_in=2.0, weight_out=0.5,
                                       seed=0)
        adjacency = graph.adjacency.toarray()
        assert adjacency[0, 1] == 2.0
        assert adjacency[0, 10] == 0.5

    def test_rejects_bad_sizes(self):
        with pytest.raises(GraphConstructionError):
            stochastic_block_model([0, 5], 0.5, 0.1)

    def test_community_pair_helper(self):
        graph = community_pair_graph(community_size=15, seed=4)
        assert graph.num_nodes == 30


class TestPerturbWeights:
    def test_support_unchanged(self):
        graph = community_pair_graph(community_size=15, seed=1)
        jittered = perturb_weights(graph, relative_noise=0.1, seed=2)
        a = (graph.adjacency > 0).toarray()
        b = (jittered.adjacency > 0).toarray()
        np.testing.assert_array_equal(a, b)

    def test_bounded_change(self):
        graph = community_pair_graph(community_size=15, seed=1)
        jittered = perturb_weights(graph, relative_noise=0.1, seed=2)
        ratio = jittered.adjacency.data / graph.adjacency.data
        assert ratio.min() >= 0.9 - 1e-12
        assert ratio.max() <= 1.1 + 1e-12

    def test_zero_noise_identity(self):
        graph = community_pair_graph(community_size=10, seed=1)
        same = perturb_weights(graph, relative_noise=0.0, seed=3)
        assert abs(graph.adjacency - same.adjacency).max() < 1e-12


class TestRandomSymmetricNoise:
    def test_symmetric(self):
        noise = random_symmetric_noise(50, density=0.05, seed=0)
        assert abs(noise - noise.T).max() == 0.0

    def test_zero_diagonal(self):
        noise = random_symmetric_noise(50, density=0.2, seed=1)
        assert np.all(noise.diagonal() == 0.0)

    def test_density_scaling(self):
        dense = random_symmetric_noise(200, density=0.05, seed=2)
        sparse = random_symmetric_noise(200, density=0.005, seed=2)
        assert dense.nnz > 3 * sparse.nnz

    def test_value_range(self):
        noise = random_symmetric_noise(100, density=0.05, low=0.5,
                                       high=0.7, seed=3)
        assert noise.data.min() >= 0.5
        assert noise.data.max() < 0.7

    def test_zero_density(self):
        noise = random_symmetric_noise(30, density=0.0, seed=4)
        assert noise.nnz == 0
