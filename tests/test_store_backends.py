"""Property tests for the SessionStore backends.

Both backends must uphold the same contract: atomic puts (a reader
never sees a torn object, an aborted put leaves the old bytes), exact
roundtrips, list-after-put consistency, idempotent deletes, and a CAS
primitive where concurrent racers produce exactly one winner.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    FencedWriteError,
    LocalDirStore,
    SharedStore,
    StoreCorruptError,
    StoreError,
    StoreKeyError,
    resolve_store,
)

BACKENDS = ["local", "shared"]

#: Flat, dot-free key names: portable across both layouts and immune
#: to the file-vs-directory ambiguity of nested local keys.
KEY_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-",
    min_size=1, max_size=24,
)

PAYLOADS = st.binary(min_size=0, max_size=512)


def make_store(kind: str, tmp_path):
    if kind == "local":
        return LocalDirStore(tmp_path / "local", fsync=False)
    return SharedStore(tmp_path / "shared", fsync=False)


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(request.param, tmp_path)


class TestRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(mapping=st.dictionaries(KEY_NAMES, PAYLOADS,
                                   min_size=1, max_size=8))
    def test_put_get_list_consistent(self, tmp_path_factory, mapping):
        for kind in BACKENDS:
            store = make_store(kind, tmp_path_factory.mktemp("prop"))
            for key, data in mapping.items():
                store.put(key, data)
            # list-after-put: every written key is visible...
            listed = store.list()
            assert set(listed) == set(mapping)
            assert listed == sorted(listed)
            # ...and reads return exactly the written bytes.
            for key, data in mapping.items():
                assert store.get(key) == data
                assert store.exists(key)

    @settings(max_examples=25, deadline=None)
    @given(key=KEY_NAMES, versions=st.lists(PAYLOADS, min_size=2,
                                            max_size=5))
    def test_last_put_wins(self, tmp_path_factory, key, versions):
        for kind in BACKENDS:
            store = make_store(kind, tmp_path_factory.mktemp("prop"))
            for data in versions:
                store.put(key, data)
            assert store.get(key) == versions[-1]

    def test_missing_key_raises(self, store):
        with pytest.raises(StoreKeyError):
            store.get("nope")
        assert not store.exists("nope")
        store.delete("nope")  # idempotent no-op

    def test_delete_removes(self, store):
        store.put("victim", b"x")
        store.delete("victim")
        assert not store.exists("victim")
        assert "victim" not in store.list()

    def test_prefix_listing(self, store):
        store.put("leases/a.json", b"1")
        store.put("b.json", b"2")
        assert store.list("leases/") == ["leases/a.json"]

    def test_bad_keys_rejected(self, store):
        for key in ("", "/abs", "../escape", "a/../b"):
            with pytest.raises(StoreError):
                store.put(key, b"x")


class TestAtomicity:
    """Interrupted writes never surface partial objects."""

    def test_aborted_put_keeps_old_bytes(self, store):
        store.put("obj", b"old")

        def guard():
            raise FencedWriteError("stale")

        with pytest.raises(FencedWriteError):
            store.put("obj", b"new", guard=guard)
        assert store.get("obj") == b"old"

    def test_aborted_first_put_leaves_nothing(self, store):
        def guard():
            raise FencedWriteError("stale")

        with pytest.raises(FencedWriteError):
            store.put("obj", b"new", guard=guard)
        assert not store.exists("obj")
        assert store.list() == []

    def test_aborted_log_append_writes_nothing(self, store):
        store.append("log.wal", b"line-1\n")

        def guard():
            raise FencedWriteError("stale")

        with pytest.raises(FencedWriteError):
            store.append("log.wal", b"line-2\n", guard=guard)
        assert store.get("log.wal") == b"line-1\n"

    def test_shared_crash_between_object_and_manifest(self, tmp_path):
        """A put torn between the generation write and the manifest
        update must leave readers on the previous generation."""
        store = SharedStore(tmp_path, fsync=False)
        store.put("obj", b"old")

        def crash(key):
            raise OSError("simulated crash before manifest update")

        store.hooks["before_manifest"] = crash
        with pytest.raises(OSError):
            store.put("obj", b"new")
        store.hooks.clear()
        assert store.get("obj") == b"old"

    def test_shared_checksum_verification(self, tmp_path):
        store = SharedStore(tmp_path, fsync=False)
        store.put("obj", b"payload")
        [generation] = (tmp_path / "objects").glob("obj.g*")
        generation.write_bytes(b"bitrot!")
        with pytest.raises(StoreCorruptError):
            store.get("obj")
        # The quarantine path still moves it, unverified.
        store.move("obj", "quarantine/obj")
        assert not store.exists("obj")


class TestCas:
    def test_create_and_swap(self, store):
        assert store.cas("lock", None, b"v1") is True
        assert store.cas("lock", None, b"v2") is False
        assert store.cas("lock", b"v1", b"v2") is True
        assert store.cas("lock", b"v1", b"v3") is False
        assert store.get("lock") == b"v2"

    @pytest.mark.parametrize("racers", [4, 8])
    def test_concurrent_cas_has_exactly_one_winner(self, store,
                                                   racers):
        barrier = threading.Barrier(racers)
        wins: list[int] = []
        lock = threading.Lock()

        def race(identity: int) -> None:
            barrier.wait()
            if store.cas("contended", None,
                         f"holder-{identity}".encode()):
                with lock:
                    wins.append(identity)

        threads = [
            threading.Thread(target=race, args=(identity,))
            for identity in range(racers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1, f"CAS produced {len(wins)} winners"
        assert store.get("contended") == f"holder-{wins[0]}".encode()


class TestResolveStore:
    def test_specs(self, tmp_path):
        local = resolve_store(f"local:{tmp_path / 'a'}")
        assert isinstance(local, LocalDirStore)
        shared = resolve_store(f"shared:{tmp_path / 'b'}")
        assert isinstance(shared, SharedStore)
        bare = resolve_store(str(tmp_path / "c"))
        assert isinstance(bare, LocalDirStore)
        assert resolve_store(local) is local

    def test_bad_specs(self, tmp_path):
        with pytest.raises(StoreError):
            resolve_store(f"s3:{tmp_path}")
        with pytest.raises(StoreError):
            resolve_store("local:")
