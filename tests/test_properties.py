"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical backbone of the library:

* commute time is a metric (non-negativity, symmetry, triangle
  inequality) and matches Rayleigh monotonicity;
* the Laplacian solver returns minimum-norm solutions;
* Algorithm 1's minimal-set thresholding is minimal and monotone in δ;
* ROC/AUC behaves as a rank statistic under monotone transforms.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import minimal_edge_set
from repro.evaluation import auc_score
from repro.graphs import GraphSnapshot
from repro.linalg import (
    LaplacianSolver,
    commute_time_matrix,
    laplacian_pseudoinverse,
)


@st.composite
def connected_weighted_graphs(draw, max_nodes=12):
    """Random connected weighted graphs as dense adjacency matrices."""
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    order = rng.permutation(n)
    # spanning path guarantees connectivity
    for a, b in zip(order[:-1], order[1:]):
        adjacency[a, b] = adjacency[b, a] = rng.uniform(0.2, 3.0)
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            weight = rng.uniform(0.2, 3.0)
            adjacency[i, j] = adjacency[j, i] = weight
    return adjacency


class TestCommuteTimeMetric:
    @settings(max_examples=30, deadline=None)
    @given(connected_weighted_graphs())
    def test_metric_axioms(self, adjacency):
        commute = commute_time_matrix(adjacency)
        n = adjacency.shape[0]
        # symmetry and zero diagonal
        np.testing.assert_allclose(commute, commute.T, atol=1e-7)
        np.testing.assert_allclose(np.diag(commute), 0.0, atol=1e-8)
        # non-negativity
        assert commute.min() >= -1e-9
        # triangle inequality (commute time is a squared-Euclidean-like
        # metric that satisfies the inequality directly)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert commute[i, j] <= (
                        commute[i, k] + commute[k, j] + 1e-6
                    )

    @settings(max_examples=20, deadline=None)
    @given(connected_weighted_graphs(max_nodes=8),
           st.integers(min_value=0, max_value=10**6))
    def test_rayleigh_monotonicity(self, adjacency, seed):
        """Adding weight anywhere cannot increase any effective
        resistance (commute time / volume)."""
        n = adjacency.shape[0]
        rng = np.random.default_rng(seed)
        i, j = rng.integers(0, n, size=2)
        if i == j:
            return
        boosted = adjacency.copy()
        boosted[i, j] += 1.0
        boosted[j, i] = boosted[i, j]
        before = commute_time_matrix(adjacency) / adjacency.sum()
        after = commute_time_matrix(boosted) / boosted.sum()
        assert np.all(after <= before + 1e-7)

    @settings(max_examples=20, deadline=None)
    @given(connected_weighted_graphs(max_nodes=10))
    def test_adjacent_resistance_bound(self, adjacency):
        """r(i, j) <= 1 / w(i, j) for adjacent pairs (parallel paths
        can only lower resistance)."""
        volume = adjacency.sum()
        commute = commute_time_matrix(adjacency)
        resistance = commute / volume
        n = adjacency.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                if adjacency[i, j] > 0:
                    assert resistance[i, j] <= 1.0 / adjacency[i, j] + 1e-7


class TestSolverProperties:
    @settings(max_examples=20, deadline=None)
    @given(connected_weighted_graphs(max_nodes=10),
           st.integers(min_value=0, max_value=10**6))
    def test_minimum_norm_solution(self, adjacency, seed):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(adjacency.shape[0])
        solver = LaplacianSolver(adjacency, method="direct")
        x = solver.solve(b)
        pseudo = laplacian_pseudoinverse(adjacency)
        expected = pseudo @ (b - b.mean())
        np.testing.assert_allclose(x, expected, atol=1e-6)
        # minimum-norm: orthogonal to the all-ones null space
        assert abs(x.sum()) < 1e-7


class TestMinimalEdgeSetProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0),
                 min_size=0, max_size=40),
        st.floats(min_value=1e-6, max_value=500.0),
    )
    def test_feasibility_and_minimality(self, raw_scores, delta):
        scores = np.array(raw_scores)
        mask = minimal_edge_set(scores, delta)
        residual = scores[~mask].sum()
        total = scores.sum()
        tolerance = 1e-9 * max(total, 1.0)
        if total < delta:
            assert not mask.any()
        else:
            # feasibility: the constraint holds (up to float roundoff
            # in the cumulative sums)
            assert residual < delta + tolerance
            # minimality: dropping the smallest selected edge breaks it
            if mask.any():
                selected = scores[mask]
                assert residual + selected.min() >= delta - tolerance

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0),
                 min_size=1, max_size=30),
        st.floats(min_value=1e-3, max_value=100.0),
        st.floats(min_value=1.1, max_value=5.0),
    )
    def test_monotone_in_delta(self, raw_scores, delta, factor):
        """Raising delta never grows the anomaly set."""
        scores = np.array(raw_scores)
        small = minimal_edge_set(scores, delta)
        large = minimal_edge_set(scores, delta * factor)
        assert large.sum() <= small.sum()


class TestAucProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=200),
           st.integers(min_value=0, max_value=10**6))
    def test_invariant_under_monotone_transform(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.5
        if labels.all() or not labels.any():
            return
        scores = rng.standard_normal(n)
        original = auc_score(labels, scores)
        transformed = auc_score(labels, np.exp(scores) * 3.0 + 7.0)
        assert original == pytest.approx(transformed, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=100),
           st.integers(min_value=0, max_value=10**6))
    def test_complement_symmetry(self, n, seed):
        """AUC(labels, -scores) = 1 - AUC(labels, scores) without ties."""
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.4
        if labels.all() or not labels.any():
            return
        scores = rng.permutation(n).astype(float)  # distinct scores
        forward = auc_score(labels, scores)
        backward = auc_score(labels, -scores)
        assert forward + backward == pytest.approx(1.0)


class TestSnapshotProperties:
    @settings(max_examples=40, deadline=None)
    @given(connected_weighted_graphs(max_nodes=10))
    def test_volume_is_twice_edge_weight_sum(self, adjacency):
        snapshot = GraphSnapshot(adjacency)
        edge_sum = sum(w for _u, _v, w in snapshot.edge_list())
        assert snapshot.volume() == pytest.approx(2.0 * edge_sum)

    @settings(max_examples=40, deadline=None)
    @given(connected_weighted_graphs(max_nodes=10))
    def test_degrees_sum_to_volume(self, adjacency):
        snapshot = GraphSnapshot(adjacency)
        assert snapshot.degrees().sum() == pytest.approx(
            snapshot.volume()
        )
