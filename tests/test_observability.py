"""Tests for repro.observability: tracing, metrics, export, logging."""

import json
import logging
import time

import numpy as np
import pytest

from repro import detect
from repro.graphs import DynamicGraph, random_sparse_graph
from repro.observability import (
    JsonLogFormatter,
    MetricsRegistry,
    add_counter,
    build_metrics_document,
    collecting,
    configure_logging,
    current_registry,
    enabled,
    get_logger,
    observe,
    render_prometheus,
    set_gauge,
    summarize_metrics,
    trace,
    traced,
)
from repro.pipeline.serialize import report_to_dict


@pytest.fixture
def graph():
    return DynamicGraph([
        random_sparse_graph(40, mean_degree=4.0, seed=s, connected=True)
        for s in range(5)
    ])


class TestMetricsRegistry:
    def test_counters_accumulate_by_labels(self):
        registry = MetricsRegistry()
        registry.inc("solves", 1.0, {"backend": "cg"})
        registry.inc("solves", 2.0, {"backend": "cg"})
        registry.inc("solves", 5.0, {"backend": "direct"})
        assert registry.counter_value("solves", {"backend": "cg"}) == 3.0
        assert registry.counter_value(
            "solves", {"backend": "direct"}
        ) == 5.0

    def test_state_round_trips_through_merge(self):
        a = MetricsRegistry()
        a.inc("hits", 2.0)
        a.set_gauge("pool", 2.0)
        a.observe("latency", 0.2)
        a.record_span("pinv", wall=0.5, cpu=0.4)

        b = MetricsRegistry()
        b.inc("hits", 3.0)
        b.set_gauge("pool", 4.0)
        b.observe("latency", 0.7)
        b.record_span("pinv", wall=0.25, cpu=0.2)
        b.merge_state(a.state())

        assert b.counter_value("hits") == 5.0
        state = b.state()
        gauges = {g["name"]: g["value"] for g in state["gauges"]}
        assert gauges["pool"] == 4.0  # merge keeps the max
        spans = state["spans"]["pinv"]
        assert spans["count"] == 2
        assert spans["wall_seconds"] == pytest.approx(0.75)
        histogram = state["histograms"][0]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(0.9)

    def test_span_error_accounting(self):
        registry = MetricsRegistry()
        registry.record_span("solve", wall=0.1, cpu=0.1, error=True)
        registry.record_span("solve", wall=0.1, cpu=0.1)
        assert registry.state()["spans"]["solve"]["errors"] == 1


class TestTracing:
    def test_disabled_is_noop(self):
        assert not enabled()
        with trace("anything", n=3):
            pass
        add_counter("nothing")
        set_gauge("nothing", 1.0)
        observe("nothing", 1.0)
        assert current_registry() is None

    def test_collecting_records_and_restores(self):
        with collecting() as registry:
            assert enabled()
            with trace("outer"):
                with trace("inner"):
                    time.sleep(0.001)
            add_counter("things", 2.0, kind="a")
        assert not enabled()
        assert registry.span_count("outer") == 1
        assert registry.span_count("inner") == 1
        assert registry.counter_value("things", {"kind": "a"}) == 2.0

    def test_nested_span_records_parent(self):
        with collecting() as registry:
            with trace("outer"):
                with trace("inner"):
                    pass
        recent = {span["name"]: span for span in
                  registry.state()["recent_spans"]}
        assert recent["inner"]["parent"] == "outer"
        assert recent["outer"]["parent"] is None

    def test_span_marks_errors(self):
        with collecting() as registry:
            with pytest.raises(ValueError):
                with trace("failing"):
                    raise ValueError("boom")
        assert registry.state()["spans"]["failing"]["errors"] == 1

    def test_traced_decorator(self):
        @traced("my.function")
        def function(x):
            return x + 1

        assert function(1) == 2  # disabled: plain call
        with collecting() as registry:
            assert function(2) == 3
        assert registry.span_count("my.function") == 1


class TestExport:
    def test_document_shape(self):
        with collecting() as registry:
            with trace("pinv", n=10):
                pass
            add_counter("pinv_total")
        document = build_metrics_document(registry)
        assert document["format"] == "repro-metrics"
        assert document["version"] == 1
        assert "pinv" in document["spans"]
        json.dumps(document)  # JSON-clean by construction

    def test_summarize_mentions_top_spans_and_workers(self):
        registry = MetricsRegistry()
        registry.record_span("slow", wall=2.0, cpu=2.0)
        registry.record_span("fast", wall=0.1, cpu=0.1)
        document = build_metrics_document(
            registry, worker_states={"1": MetricsRegistry().state()}
        )
        line = summarize_metrics(document)
        assert "slow" in line
        assert "workers=1" in line

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("solves_total", 3.0, {"backend": "cg"})
        registry.set_gauge("pool_size", 2.0)
        registry.observe("latency_seconds", 0.05)
        registry.record_span("pinv", wall=0.5, cpu=0.4)
        text = render_prometheus(build_metrics_document(registry))
        assert 'repro_solves_total{backend="cg"} 3' in text
        assert "repro_pool_size 2" in text
        assert 'repro_span_count{span="pinv"} 1' in text
        assert 'le="+Inf"' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.inc("weird", 1.0, {"path": 'a"b\\c'})
        text = render_prometheus(build_metrics_document(registry))
        assert 'path="a\\"b\\\\c"' in text


class TestLogging:
    def test_configure_is_idempotent(self):
        logger = logging.getLogger("repro")
        configure_logging(level="info")
        configure_logging(level="debug")
        own = [h for h in logger.handlers
               if type(h).__name__ == "_ConfiguredHandler"]
        assert len(own) == 1
        assert logger.level == logging.DEBUG

    def test_json_formatter(self):
        record = logging.LogRecord(
            name="repro.cli", level=logging.INFO, pathname=__file__,
            lineno=1, msg="scored %d", args=(3,), exc_info=None,
        )
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.cli"
        assert payload["message"] == "scored 3"

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_get_logger_namespaces(self):
        assert get_logger("worker").name == "repro.worker"


class TestDetectMetrics:
    def test_serial_run_attaches_document(self, graph):
        report = detect(graph, detector="cad",
                        anomalies_per_transition=3, method="exact",
                        workers=1, metrics=True)
        document = report.metrics
        assert document is not None
        spans = document["spans"]
        # Solver, scoring, and thresholding layers all covered.
        assert "pinv" in spans
        assert "commute.pairwise" in spans
        assert "score.transition" in spans
        assert "threshold.select" in spans
        assert spans["score.transition"]["count"] == 4
        counters = {c["name"] for c in document["counters"]}
        assert "transitions_scored_total" in counters
        assert "metrics:" in report.summary()
        assert report_to_dict(report)["metrics"] is document
        json.dumps(document)

    def test_metrics_false_leaves_report_clean(self, graph):
        report = detect(graph, detector="cad",
                        anomalies_per_transition=3, method="exact",
                        workers=1)
        assert report.metrics is None
        assert "metrics" not in report_to_dict(report)

    def test_parallel_run_merges_worker_metrics(self, graph):
        report = detect(graph, detector="cad",
                        anomalies_per_transition=3, method="exact",
                        workers=2, shard_by="transition", metrics=True)
        document = report.metrics
        assert document is not None
        # The merged view covers worker-side spans...
        assert "worker.chunk" in document["spans"]
        assert "score.transition" in document["spans"]
        assert document["spans"]["score.transition"]["count"] == 4
        # ...and the per-worker breakdown stays intact.
        workers = document["workers"]
        assert len(workers) >= 1
        for state in workers.values():
            assert "worker.init" in state["spans"]
            assert "worker.chunk" in state["spans"]
        json.dumps(document)

    def test_parallel_matches_serial_scores(self, graph):
        serial = detect(graph, detector="cad",
                        anomalies_per_transition=3, method="exact",
                        workers=1, metrics=True)
        parallel = detect(graph, detector="cad",
                          anomalies_per_transition=3, method="exact",
                          workers=2, shard_by="transition",
                          metrics=True)
        assert serial.threshold == parallel.threshold
        for a, b in zip(serial.transitions, parallel.transitions):
            np.testing.assert_array_equal(a.scores.edge_scores,
                                          b.scores.edge_scores)


class TestCliMetrics:
    @pytest.fixture
    def graph_file(self, tmp_path, graph):
        from repro.graphs import write_temporal_edge_csv

        path = tmp_path / "graph.csv"
        write_temporal_edge_csv(graph, path)
        return path

    def test_metrics_out_writes_json_document(self, graph_file,
                                              tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "metrics.json"
        assert main(["detect", str(graph_file), "-l", "3",
                     "--metrics-out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "repro-metrics"
        assert "score.transition" in document["spans"]
        assert "metrics:" in capsys.readouterr().out

    def test_metrics_out_parallel_keeps_worker_breakdown(
            self, graph_file, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "metrics.json"
        assert main(["detect", str(graph_file), "-l", "3",
                     "--workers", "2", "--shard-by", "transition",
                     "--metrics-out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert "worker.chunk" in document["spans"]
        assert len(document["workers"]) >= 1

    def test_metrics_out_prometheus(self, graph_file, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "metrics.prom"
        assert main(["detect", str(graph_file), "-l", "3",
                     "--metrics-out", str(out_path),
                     "--metrics-format", "prometheus"]) == 0
        text = out_path.read_text()
        assert "repro_transitions_scored_total" in text
        assert 'repro_span_count{span="score.transition"}' in text

    def test_log_flags(self, graph_file, capsys):
        from repro.cli import main

        assert main(["--log-level", "info", "--log-json",
                     "info", str(graph_file)]) == 0
        err = capsys.readouterr().err
        # configure_logging attached a JSON handler; the info command
        # itself logs nothing, so stderr may be empty — but a second
        # run through detect emits the structured record.
        assert main(["--log-level", "info", "--log-json",
                     "detect", str(graph_file), "-l", "3"]) == 0
        err = capsys.readouterr().err
        record = json.loads(err.strip().splitlines()[0])
        assert record["logger"] == "repro.cli"
        assert record["level"] == "info"


class TestDisabledOverhead:
    def test_disabled_tracing_costs_under_two_percent(self, graph):
        """Acceptance: instrumentation off must cost < 2% of a serial
        CAD detect. Measured robustly: (per-call disabled trace cost)
        × (span count of an instrumented run) against the detect wall
        time, so CI noise in a single run cannot flip the verdict."""
        calls = 20_000
        start = time.perf_counter()
        for _ in range(calls):
            with trace("noop", n=1):
                pass
            add_counter("noop")
        per_call = (time.perf_counter() - start) / calls

        start = time.perf_counter()
        report = detect(graph, detector="cad",
                        anomalies_per_transition=3, method="exact",
                        workers=1, metrics=True)
        detect_wall = time.perf_counter() - start
        span_calls = sum(
            s["count"] for s in report.metrics["spans"].values()
        )
        counter_calls = sum(
            c["value"] for c in report.metrics["counters"]
        )
        overhead = per_call * (span_calls + counter_calls)
        assert overhead < 0.02 * detect_wall, (
            f"disabled instrumentation would cost {overhead:.6f}s of a "
            f"{detect_wall:.3f}s detect ({100 * overhead / detect_wall:.2f}%)"
        )
