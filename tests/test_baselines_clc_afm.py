"""Unit tests for the CLC and AFM baselines."""

import numpy as np
import pytest

from repro.baselines import AfmDetector, ClcDetector
from repro.baselines.afm import FEATURE_NAMES, extract_features
from repro.exceptions import DetectionError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


class TestClc:
    def test_backends_agree(self, random_connected_graph):
        fast = ClcDetector(backend="scipy")
        slow = ClcDetector(backend="python")
        np.testing.assert_allclose(
            fast.closeness(random_connected_graph),
            slow.closeness(random_connected_graph),
            atol=1e-10,
        )

    def test_scores_are_centrality_changes(self, small_dynamic_graph):
        clc = ClcDetector()
        g_t, g_t1 = small_dynamic_graph[0], small_dynamic_graph[1]
        scores = clc.score_transition(g_t, g_t1)
        expected = np.abs(clc.closeness(g_t1) - clc.closeness(g_t))
        np.testing.assert_allclose(scores.node_scores, expected)

    def test_bridge_endpoints_move_most(self, small_dynamic_graph):
        clc = ClcDetector()
        scores = clc.score_transition(small_dynamic_graph[0],
                                      small_dynamic_graph[1])
        top = [label for label, _ in scores.top_nodes(5)]
        assert 0 in top or 39 in top

    def test_rejects_bad_backend(self):
        with pytest.raises(DetectionError):
            ClcDetector(backend="gpu")

    def test_no_edge_scores(self, small_dynamic_graph):
        scores = ClcDetector().score_transition(small_dynamic_graph[0],
                                                small_dynamic_graph[1])
        assert scores.num_scored_edges == 0

    def test_disconnected_handled(self, disconnected_graph):
        closeness = ClcDetector().closeness(disconnected_graph)
        assert np.isfinite(closeness).all()


class TestExtractFeatures:
    def test_shape_and_names(self, triangle_graph):
        features = extract_features(triangle_graph)
        assert features.shape == (3, len(FEATURE_NAMES))

    def test_weighted_degree_column(self, triangle_graph):
        features = extract_features(triangle_graph)
        np.testing.assert_allclose(features[:, 0],
                                   triangle_graph.degrees())

    def test_degree_column(self, path_graph):
        features = extract_features(path_graph)
        np.testing.assert_allclose(features[:, 1], [1, 2, 2, 1])

    def test_mean_weight(self):
        adjacency = np.array([
            [0.0, 2.0, 4.0],
            [2.0, 0.0, 0.0],
            [4.0, 0.0, 0.0],
        ])
        features = extract_features(GraphSnapshot(adjacency))
        assert features[0, 2] == pytest.approx(3.0)

    def test_egonet_edges_triangle(self, triangle_graph):
        features = extract_features(triangle_graph)
        # each node: degree 2 + the opposite edge = 3 egonet edges
        np.testing.assert_allclose(features[:, 3], 3.0)

    def test_isolated_node(self):
        features = extract_features(GraphSnapshot(np.zeros((2, 2))))
        np.testing.assert_allclose(features, 0.0)


class TestAfm:
    def _sequence(self, event=False):
        base = community_pair_graph(community_size=12, p_in=0.6, seed=2)
        snapshots = [base]
        for t in range(4):
            snapshots.append(perturb_weights(base, 0.02, seed=40 + t))
        if event:
            matrix = snapshots[-1].adjacency.tolil()
            matrix[0, :] *= 6.0
            matrix[:, 0] *= 6.0
            snapshots[-1] = GraphSnapshot(matrix.tocsr(), base.universe)
        return DynamicGraph(snapshots)

    def test_feature_burst_detected_and_quiet_contrast(self):
        afm = AfmDetector(window=3)
        quiet = afm.score_sequence(self._sequence())[-1]
        burst = afm.score_sequence(self._sequence(event=True))[-1]
        top = [label for label, _ in burst.top_nodes(3)]
        assert 0 in top
        # the burst actor scores well beyond anything in the quiet run
        assert burst.node_scores[0] > 1.5 * quiet.node_scores.max()

    def test_per_feature_extras(self):
        afm = AfmDetector(window=2)
        scored = afm.score_sequence(self._sequence())
        per_feature = scored[0].extras["per_feature"]
        assert per_feature.shape == (len(FEATURE_NAMES), 24)

    def test_window_resets(self):
        afm = AfmDetector(window=3)
        graph = self._sequence()
        first = afm.score_sequence(graph)
        second = afm.score_sequence(graph)
        for a, b in zip(first, second):
            np.testing.assert_allclose(a.node_scores, b.node_scores)

    def test_minimum_window_enforced(self):
        afm = AfmDetector(window=1)
        assert afm.window == 2
