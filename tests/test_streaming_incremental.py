"""Streaming with the incrementally maintained exact backend."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.streaming import StreamingCadDetector
from repro.exceptions import DetectionError
from repro.graphs.snapshot import GraphSnapshot, NodeUniverse


def random_stream(n=16, steps=10, seed=5, edits=3):
    rng = np.random.default_rng(seed)
    universe = NodeUniverse.of_size(n)
    weights = np.triu(
        (rng.random((n, n)) < 0.4)
        * rng.integers(1, 5, (n, n)), 1
    ).astype(float)
    snapshots = []
    for t in range(steps):
        w = weights.copy()
        for _ in range(edits):
            i, j = rng.integers(0, n, 2)
            if i != j:
                w[min(i, j), max(i, j)] = float(rng.integers(0, 8))
        weights = w
        snapshots.append(
            GraphSnapshot(sp.csr_matrix(w + w.T), universe, time=t)
        )
    return snapshots


def result_sets(result):
    if result is None:
        return None
    return (
        sorted((u, v) for u, v, _ in result.anomalous_edges),
        sorted(result.anomalous_nodes),
    )


class TestIncrementalParity:
    def test_push_results_match_full_recompute(self):
        snapshots = random_stream()
        plain = StreamingCadDetector(anomalies_per_transition=2,
                                     warmup=2, method="exact")
        incremental = StreamingCadDetector(anomalies_per_transition=2,
                                           warmup=2, method="exact",
                                           incremental=True)
        for snapshot in snapshots:
            expected = plain.push(snapshot)
            actual = incremental.push(snapshot)
            assert result_sets(actual) == result_sets(expected)
            if expected is not None:
                np.testing.assert_allclose(
                    actual.scores.edge_scores,
                    expected.scores.edge_scores,
                    rtol=1e-8, atol=1e-10,
                )
        plain_report = plain.finalize()
        inc_report = incremental.finalize()
        assert [result_sets(r) for r in inc_report.transitions] == \
            [result_sets(r) for r in plain_report.transitions]

    def test_only_initial_build_recomputes_on_smooth_stream(self):
        snapshots = random_stream(seed=9)
        detector = StreamingCadDetector(method="exact", incremental=True)
        assert detector.incremental_recomputes == 0
        for snapshot in snapshots:
            detector.push(snapshot)
        assert detector.incremental_recomputes == 1


class TestComponentChanges:
    def test_split_falls_back_to_full_recompute(self):
        universe = NodeUniverse.of_size(6)

        def path(weights):
            matrix = np.zeros((6, 6))
            for (i, j), w in weights.items():
                matrix[i, j] = matrix[j, i] = w
            return GraphSnapshot(sp.csr_matrix(matrix), universe)

        base = {(i, i + 1): 1.0 for i in range(5)}
        connected = path(base)
        # Cutting the middle edge splits the path into two components.
        split = path({**base, (2, 3): 0.0})
        plain = StreamingCadDetector(anomalies_per_transition=1,
                                     warmup=1, method="exact")
        incremental = StreamingCadDetector(anomalies_per_transition=1,
                                           warmup=1, method="exact",
                                           incremental=True)
        streams = [connected, split, connected]
        for snapshot in streams:
            expected = plain.push(snapshot)
            actual = incremental.push(snapshot)
            assert result_sets(actual) == result_sets(expected)
        # initial build + split fallback (+ possibly the merge back)
        assert incremental.incremental_recomputes >= 2


class TestCheckpointRoundTrip:
    def test_restore_preserves_incremental_mode(self, tmp_path):
        snapshots = random_stream(seed=13)
        detector = StreamingCadDetector(anomalies_per_transition=2,
                                        warmup=2, method="exact",
                                        incremental=True)
        for snapshot in snapshots[:5]:
            detector.push(snapshot)
        path = tmp_path / "stream.npz"
        detector.checkpoint(path)

        restored = StreamingCadDetector.restore(path, method="exact")
        assert restored.incremental
        reference = StreamingCadDetector(anomalies_per_transition=2,
                                         warmup=2, method="exact",
                                         incremental=True)
        for snapshot in snapshots:
            expected = reference.push(snapshot)
        for snapshot in snapshots[5:]:
            actual = restored.push(snapshot)
        assert result_sets(actual) == result_sets(expected)
        assert [result_sets(r) for r in restored.finalize().transitions] \
            == [result_sets(r) for r in reference.finalize().transitions]


class TestGuards:
    def test_incremental_requires_exact_backend(self):
        snapshots = random_stream(n=12, steps=2)
        detector = StreamingCadDetector(method="approx", k=8,
                                        incremental=True, seed=1)
        with pytest.raises(DetectionError, match="exact"):
            detector.push(snapshots[0])

    def test_auto_resolving_to_approx_rejected(self):
        snapshots = random_stream(n=12, steps=2)
        detector = StreamingCadDetector(method="auto", exact_limit=4,
                                        incremental=True, seed=1)
        with pytest.raises(DetectionError, match="exact"):
            detector.push(snapshots[0])

    def test_ingest_scored_needs_previous_snapshot(self):
        snapshots = random_stream(steps=2)
        detector = StreamingCadDetector(method="exact")
        scorer = StreamingCadDetector(method="exact")
        scorer.push(snapshots[0])
        scorer.push(snapshots[1])
        with pytest.raises(DetectionError, match="previous snapshot"):
            detector.ingest_scored(snapshots[1], scorer._scored[0])

    def test_ingest_scored_blocked_under_incremental(self):
        snapshots = random_stream(steps=2)
        scorer = StreamingCadDetector(method="exact")
        scorer.push(snapshots[0])
        scorer.push(snapshots[1])
        detector = StreamingCadDetector(method="exact", incremental=True)
        detector.push(snapshots[0])
        with pytest.raises(DetectionError, match="incremental"):
            detector.ingest_scored(snapshots[1], scorer._scored[0])

    def test_ingest_scored_matches_push(self):
        snapshots = random_stream(seed=17)
        pusher = StreamingCadDetector(anomalies_per_transition=2,
                                      warmup=2, method="exact")
        ingester = StreamingCadDetector(anomalies_per_transition=2,
                                        warmup=2, method="exact")
        scorer = StreamingCadDetector(anomalies_per_transition=2,
                                      warmup=2, method="exact")
        ingester.push(snapshots[0])
        previous = snapshots[0]
        for snapshot in snapshots:
            scorer.push(snapshot)
        for position, snapshot in enumerate(snapshots):
            expected = pusher.push(snapshot)
            if position == 0:
                continue
            actual = ingester.ingest_scored(
                snapshot, scorer._scored[position - 1]
            )
            assert result_sets(actual) == result_sets(expected)
            previous = snapshot
        assert previous is snapshots[-1]
