"""Tests for snapshot sanitization and the sanitizing IO readers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError, SanitizationError
from repro.graphs import (
    GraphSnapshot,
    NodeUniverse,
    raw_matrix_from_edges,
    read_npz,
    read_temporal_edge_csv,
    sanitize_adjacency,
    sanitize_snapshot,
    write_npz,
)
from repro.graphs.dynamic import DynamicGraph
from repro.resilience import corrupt_adjacency


def _clean_matrix():
    matrix = np.zeros((4, 4))
    matrix[0, 1] = matrix[1, 0] = 1.0
    matrix[1, 2] = matrix[2, 1] = 2.0
    matrix[2, 3] = matrix[3, 2] = 0.5
    return matrix


class TestCleanInput:
    def test_clean_passthrough(self):
        matrix, report = sanitize_adjacency(_clean_matrix())
        assert report.is_clean
        assert not report.repaired
        assert report.entries_fixed == 0
        assert report.describe() == "clean snapshot"
        np.testing.assert_allclose(matrix.toarray(), _clean_matrix())

    def test_clean_under_raise_policy(self):
        matrix, report = sanitize_adjacency(_clean_matrix(),
                                            policy="raise")
        assert matrix is not None and report.is_clean


class TestDefectCounting:
    def test_non_finite(self):
        dirty = _clean_matrix()
        dirty[0, 1] = dirty[1, 0] = np.nan
        dirty[1, 2] = np.inf
        dirty[2, 1] = np.inf
        _, report = sanitize_adjacency(dirty)
        assert report.non_finite == 4  # stored entries, both directions

    def test_negative(self):
        dirty = _clean_matrix()
        dirty[0, 1] = dirty[1, 0] = -2.0
        _, report = sanitize_adjacency(dirty)
        assert report.negative == 2

    def test_self_loops(self):
        dirty = _clean_matrix()
        dirty[0, 0] = 3.0
        dirty[2, 2] = 1.0
        _, report = sanitize_adjacency(dirty)
        assert report.self_loops == 2

    def test_asymmetric_counted_as_pairs(self):
        dirty = _clean_matrix()
        dirty[0, 1] = 5.0  # disagree with dirty[1, 0] == 1.0
        _, report = sanitize_adjacency(dirty)
        assert report.asymmetric == 1


class TestRepairPolicy:
    def test_non_finite_weights_dropped(self):
        dirty = _clean_matrix()
        dirty[0, 1] = dirty[1, 0] = np.nan
        matrix, report = sanitize_adjacency(dirty)
        assert report.repaired
        assert matrix[0, 1] == 0.0
        assert np.isfinite(matrix.toarray()).all()

    def test_negative_weights_dropped(self):
        dirty = _clean_matrix()
        dirty[2, 3] = dirty[3, 2] = -1.0
        matrix, _ = sanitize_adjacency(dirty)
        assert matrix[2, 3] == 0.0

    def test_asymmetry_symmetrised_by_maximum(self):
        dirty = _clean_matrix()
        dirty[0, 1] = 5.0
        matrix, _ = sanitize_adjacency(dirty)
        assert matrix[0, 1] == 5.0
        assert matrix[1, 0] == 5.0

    def test_self_loops_zeroed(self):
        dirty = _clean_matrix()
        dirty[3, 3] = 9.0
        matrix, _ = sanitize_adjacency(dirty)
        assert matrix.diagonal().sum() == 0.0

    def test_repaired_matrix_is_snapshot_clean(self):
        dirty = _clean_matrix()
        dirty[0, 1] = np.nan
        dirty[1, 0] = -3.0
        dirty[2, 2] = 1.0
        snapshot, report = sanitize_snapshot(dirty, time="march")
        assert isinstance(snapshot, GraphSnapshot)
        assert snapshot.time == "march"
        assert report.time == "march"
        assert "march" in report.describe()


class TestRaisePolicy:
    def test_raises_and_names_defects(self):
        dirty = _clean_matrix()
        dirty[0, 1] = dirty[1, 0] = np.nan
        with pytest.raises(SanitizationError, match="non-finite"):
            sanitize_adjacency(dirty, policy="raise")

    def test_verdict_word(self):
        dirty = _clean_matrix()
        dirty[0, 0] = 1.0
        with pytest.raises(SanitizationError, match="rejected"):
            sanitize_adjacency(dirty, policy="raise")


class TestQuarantinePolicy:
    def test_dirty_snapshot_rejected_wholesale(self):
        dirty = _clean_matrix()
        dirty[0, 1] = dirty[1, 0] = np.inf
        matrix, report = sanitize_adjacency(dirty, policy="quarantine")
        assert matrix is None
        assert report.quarantined
        assert not report.repaired
        snapshot, _ = sanitize_snapshot(dirty, policy="quarantine")
        assert snapshot is None

    def test_clean_snapshot_kept(self):
        matrix, report = sanitize_adjacency(_clean_matrix(),
                                            policy="quarantine")
        assert matrix is not None
        assert not report.quarantined


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(SanitizationError, match="policy"):
            sanitize_adjacency(_clean_matrix(), policy="ignore")

    def test_non_square_unrepairable(self):
        with pytest.raises(GraphConstructionError):
            sanitize_adjacency(np.zeros((2, 3)))


class TestRawMatrixFromEdges:
    def test_keeps_defects_for_sanitization(self):
        universe = NodeUniverse(["a", "b", "c"])
        matrix = raw_matrix_from_edges(
            [("a", "b", np.nan), ("b", "c", -2.0), ("a", "a", 1.0)],
            universe,
        )
        assert np.isnan(matrix[0, 1])
        assert matrix[1, 2] == -2.0
        assert matrix[0, 0] == 1.0  # self-loop kept on the diagonal

    def test_unknown_endpoint_rejected(self):
        universe = NodeUniverse(["a", "b"])
        with pytest.raises(GraphConstructionError, match="outside"):
            raw_matrix_from_edges([("a", "zz", 1.0)], universe)


class TestSanitizingReaders:
    def _write_dirty_csv(self, path):
        path.write_text(
            "time,source,target,weight\n"
            "t0,a,b,1.0\n"
            "t0,b,c,2.0\n"
            "t1,a,b,nan\n"
            "t1,b,c,2.0\n"
            "t2,a,b,1.5\n"
            "t2,b,c,2.5\n"
        )

    def test_csv_repair_with_reports(self, tmp_path):
        source = tmp_path / "dirty.csv"
        self._write_dirty_csv(source)
        reports = []
        graph = read_temporal_edge_csv(source, sanitize="repair",
                                       reports=reports)
        assert len(graph) == 3
        assert [r.is_clean for r in reports] == [True, False, True]
        assert reports[1].non_finite == 2

    def test_csv_quarantine_drops_snapshot(self, tmp_path):
        source = tmp_path / "dirty.csv"
        self._write_dirty_csv(source)
        reports = []
        graph = read_temporal_edge_csv(source, sanitize="quarantine",
                                       reports=reports)
        assert len(graph) == 2
        assert [s.time for s in graph] == ["t0", "t2"]
        assert reports[1].quarantined

    def test_csv_strict_raises(self, tmp_path):
        source = tmp_path / "dirty.csv"
        self._write_dirty_csv(source)
        with pytest.raises(SanitizationError):
            read_temporal_edge_csv(source, sanitize="raise")

    def test_csv_without_sanitize_stays_strict(self, tmp_path):
        source = tmp_path / "dirty.csv"
        self._write_dirty_csv(source)
        with pytest.raises(GraphConstructionError):
            read_temporal_edge_csv(source)

    def test_all_quarantined_rejected(self, tmp_path):
        source = tmp_path / "allbad.csv"
        source.write_text(
            "time,source,target,weight\n"
            "t0,a,b,nan\n"
            "t1,a,b,-1.0\n"
        )
        with pytest.raises(GraphConstructionError, match="quarantined"):
            read_temporal_edge_csv(source, sanitize="quarantine")

    def test_npz_round_trip_sanitizes(self, tmp_path,
                                      random_connected_graph):
        corrupted = corrupt_adjacency(random_connected_graph.adjacency,
                                      kind="negative", amount=2, seed=1)
        clean = GraphSnapshot(random_connected_graph.adjacency)
        graph = DynamicGraph([clean, clean])
        path = tmp_path / "graph.npz"
        write_npz(graph, path)
        # Rewrite one snapshot's stored arrays with the corrupted data.
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["data_1"] = corrupted.data
        arrays["indices_1"] = corrupted.indices
        arrays["indptr_1"] = corrupted.indptr
        np.savez_compressed(path, **arrays)
        with pytest.raises(GraphConstructionError):
            read_npz(path)
        reports = []
        repaired = read_npz(path, sanitize="repair", reports=reports)
        assert len(repaired) == 2
        assert reports[1].negative > 0
        assert sp.issparse(repaired[1].adjacency)
