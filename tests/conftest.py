"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    NodeUniverse,
    community_pair_graph,
    perturb_weights,
    random_sparse_graph,
)


@pytest.fixture
def path_graph() -> GraphSnapshot:
    """Unweighted path 0-1-2-3 (commute times known in closed form)."""
    adjacency = np.zeros((4, 4))
    for i in range(3):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return GraphSnapshot(adjacency)


@pytest.fixture
def triangle_graph() -> GraphSnapshot:
    """Weighted triangle with distinct weights."""
    adjacency = np.array([
        [0.0, 1.0, 2.0],
        [1.0, 0.0, 3.0],
        [2.0, 3.0, 0.0],
    ])
    return GraphSnapshot(adjacency)


@pytest.fixture
def disconnected_graph() -> GraphSnapshot:
    """Two disjoint edges: components {0,1} and {2,3}."""
    adjacency = np.zeros((4, 4))
    adjacency[0, 1] = adjacency[1, 0] = 1.0
    adjacency[2, 3] = adjacency[3, 2] = 2.0
    return GraphSnapshot(adjacency)


@pytest.fixture
def random_connected_graph() -> GraphSnapshot:
    """A 60-node connected random graph (deterministic seed)."""
    return random_sparse_graph(60, mean_degree=4.0, seed=11, connected=True)


@pytest.fixture
def small_dynamic_graph() -> DynamicGraph:
    """Two-community graph with one injected cross-community edge."""
    first = community_pair_graph(community_size=20, p_in=0.5,
                                 p_out=0.05, seed=5)
    drifted = perturb_weights(first, relative_noise=0.02, seed=6)
    matrix = drifted.adjacency.tolil()
    matrix[0, 39] = matrix[39, 0] = 3.0
    second = GraphSnapshot(matrix.tocsr(), first.universe)
    return DynamicGraph([first, second])


@pytest.fixture
def labeled_universe() -> NodeUniverse:
    return NodeUniverse(["alice", "bob", "carol", "dave"])
