"""Degenerate-input regression tests shared by every detector.

Empty-edge transitions, single-node universes, and all-empty sequences
must never produce NaNs, raw numpy floating-point errors, or the
object-dtype arrays scipy's sparse fancy-indexing emits for empty
index lists (the CAD regression this file pins down). A clean
:class:`~repro.exceptions.ReproError` is acceptable; anything else is
a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scores import adjacency_change_on_pairs
from repro.exceptions import ReproError
from repro.graphs import DynamicGraph, GraphSnapshot
from repro.pipeline.api import DETECTOR_FACTORIES, make_detector

ALL_DETECTORS = sorted(DETECTOR_FACTORIES)


def empty_snapshot(n=4):
    return GraphSnapshot(np.zeros((n, n)))


def one_edge_snapshot(n=4):
    adjacency = np.zeros((n, n))
    adjacency[0, 1] = adjacency[1, 0] = 1.0
    return GraphSnapshot(adjacency)


SEQUENCES = {
    "all-empty": lambda: [empty_snapshot() for _ in range(3)],
    "edge-appears": lambda: [empty_snapshot(), one_edge_snapshot(),
                             one_edge_snapshot()],
    "edge-vanishes": lambda: [one_edge_snapshot(), empty_snapshot(),
                              empty_snapshot()],
    "single-node": lambda: [GraphSnapshot(np.zeros((1, 1)))
                            for _ in range(3)],
}


def assert_clean_scores(scored):
    for scores in scored:
        assert scores.edge_scores.dtype != object
        assert scores.edge_scores.shape == scores.edge_rows.shape
        assert np.all(np.isfinite(scores.edge_scores))
        assert np.all(np.isfinite(scores.node_scores))


@pytest.mark.parametrize("name", ALL_DETECTORS)
@pytest.mark.parametrize("case", sorted(SEQUENCES))
def test_degenerate_sequences_score_cleanly(name, case):
    graph = DynamicGraph(SEQUENCES[case]())
    detector = make_detector(name)
    try:
        with np.errstate(divide="raise", invalid="raise"):
            scored = detector.score_sequence(graph)
    except ReproError:
        return  # a clean, typed refusal is acceptable
    assert_clean_scores(scored)


@pytest.mark.parametrize("name", ALL_DETECTORS)
def test_empty_to_populated_transition(name):
    """Warming up from an empty graph must not poison later scores."""
    populated = np.zeros((4, 4))
    for i, j in ((0, 1), (1, 2), (2, 3), (0, 3)):
        populated[i, j] = populated[j, i] = 1.0
    graph = DynamicGraph([
        empty_snapshot(), GraphSnapshot(populated),
        GraphSnapshot(populated * 1.5),
    ])
    detector = make_detector(name)
    try:
        with np.errstate(divide="raise", invalid="raise"):
            scored = detector.score_sequence(graph)
    except ReproError:
        return
    assert_clean_scores(scored)


def test_adjacency_change_empty_pairs_regression():
    """Empty index arrays must yield a float (0,) array, not scipy's
    shape-(1,) object matrix."""
    snapshot = empty_snapshot()
    empty_index = np.zeros(0, dtype=np.int64)
    change = adjacency_change_on_pairs(snapshot, snapshot,
                                       empty_index, empty_index)
    assert change.shape == (0,)
    assert change.dtype == np.float64
