"""Tests for per-pair exact commute times via solves and the
embedding-error diagnostic."""

import numpy as np
import pytest

from repro.exceptions import EmbeddingError, SolverError
from repro.linalg import (
    LaplacianSolver,
    commute_time_matrix,
    estimate_embedding_error,
)


class TestPairwiseSolver:
    def test_matches_dense_backend(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        solver = LaplacianSolver(adjacency, method="direct")
        rows = np.array([0, 3, 7, 12])
        cols = np.array([5, 9, 7, 40])
        values = solver.commute_times_for_pairs(rows, cols)
        expected = commute_time_matrix(adjacency)[rows, cols]
        np.testing.assert_allclose(values, expected, atol=1e-7)

    def test_self_pair_zero(self, random_connected_graph):
        solver = LaplacianSolver(random_connected_graph.adjacency)
        values = solver.commute_times_for_pairs(
            np.array([7, 7]), np.array([7, 7])
        )
        assert values.tolist() == [0.0, 0.0]

    def test_cross_component_block_convention(self, disconnected_graph):
        solver = LaplacianSolver(disconnected_graph.adjacency,
                                 method="direct")
        value = solver.commute_times_for_pairs(
            np.array([0]), np.array([2])
        )[0]
        expected = commute_time_matrix(
            disconnected_graph.adjacency
        )[0, 2]
        assert value == pytest.approx(expected, abs=1e-9)

    def test_shape_mismatch(self, random_connected_graph):
        solver = LaplacianSolver(random_connected_graph.adjacency)
        with pytest.raises(SolverError):
            solver.commute_times_for_pairs(np.array([0, 1]),
                                           np.array([1]))

    def test_cg_backend_agrees(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        direct = LaplacianSolver(adjacency, method="direct")
        cg = LaplacianSolver(adjacency, method="cg", tol=1e-12)
        rows = np.array([0, 10])
        cols = np.array([20, 30])
        np.testing.assert_allclose(
            cg.commute_times_for_pairs(rows, cols),
            direct.commute_times_for_pairs(rows, cols),
            rtol=1e-6,
        )


class TestEmbeddingErrorDiagnostic:
    def test_reports_reasonable_error(self, random_connected_graph):
        result = estimate_embedding_error(
            random_connected_graph.adjacency, k=128,
            num_samples=40, seed=0,
        )
        assert 0 <= result["median_relative_error"] < 0.5
        assert (result["median_relative_error"]
                <= result["p95_relative_error"]
                <= result["max_relative_error"])

    def test_error_shrinks_with_k(self, random_connected_graph):
        small = estimate_embedding_error(
            random_connected_graph.adjacency, k=4,
            num_samples=60, seed=1,
        )
        large = estimate_embedding_error(
            random_connected_graph.adjacency, k=512,
            num_samples=60, seed=1,
        )
        assert (large["median_relative_error"]
                < small["median_relative_error"])

    def test_single_node_rejected(self):
        with pytest.raises(EmbeddingError):
            estimate_embedding_error(np.zeros((1, 1)), k=4)
