"""Unit tests for the cross-snapshot factorization cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.graphs import GraphSnapshot, random_sparse_graph
from repro.linalg import (
    FactorCache,
    commute_time_matrix,
    laplacian_pseudoinverse,
    resolve_factor_cache,
    shared_cache,
    updated_pseudoinverse,
)
from repro.linalg.factorcache import (
    DEFAULT_BUDGET_MB,
    backend_nbytes,
    reset_shared_cache,
)


@pytest.fixture
def graph():
    return random_sparse_graph(40, mean_degree=4.0, seed=5,
                               connected=True)


@pytest.fixture(autouse=True)
def _isolate_shared_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


def _matrix(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n))


class TestFactorCache:
    def test_round_trip(self):
        cache = FactorCache(budget_mb=1)
        backend = _matrix()
        assert cache.put(("a",), backend, nbytes=backend.nbytes)
        entry = cache.get(("a",))
        assert entry is not None
        assert entry.backend is backend
        assert entry.exactness == "cold"

    def test_miss(self):
        cache = FactorCache(budget_mb=1)
        assert cache.get(("missing",)) is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_under_budget(self):
        cache = FactorCache(budget_mb=1)
        half = cache.budget_bytes // 2 + 1
        cache.put(("a",), _matrix(seed=1), nbytes=half)
        cache.put(("b",), _matrix(seed=2), nbytes=half)
        # "a" is the LRU entry and must have been evicted.
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is not None
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_lru_order(self):
        cache = FactorCache(budget_mb=1)
        third = cache.budget_bytes // 3
        cache.put(("a",), _matrix(seed=1), nbytes=third)
        cache.put(("b",), _matrix(seed=2), nbytes=third)
        cache.get(("a",))  # touch: "b" becomes the LRU entry
        cache.put(("c",), _matrix(seed=3), nbytes=2 * third)
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None

    def test_oversize_rejected(self):
        cache = FactorCache(budget_mb=1)
        assert not cache.put(("big",), _matrix(),
                             nbytes=cache.budget_bytes + 1)
        assert len(cache) == 0

    def test_updated_entries_gated(self):
        cache = FactorCache(budget_mb=1)
        backend = _matrix()
        cache.put(("a",), backend, nbytes=backend.nbytes,
                  exactness="updated")
        assert cache.get(("a",)) is None  # strict callers miss
        entry = cache.get(("a",), allow_updated=True)
        assert entry is not None and entry.exactness == "updated"

    def test_cold_never_downgraded(self):
        cache = FactorCache(budget_mb=1)
        cold = _matrix(seed=1)
        cache.put(("a",), cold, nbytes=cold.nbytes)
        assert not cache.put(("a",), _matrix(seed=2), nbytes=128,
                             exactness="updated")
        assert cache.get(("a",)).backend is cold

    def test_updated_upgraded_to_cold(self):
        cache = FactorCache(budget_mb=1)
        cache.put(("a",), _matrix(seed=1), nbytes=128,
                  exactness="updated")
        cold = _matrix(seed=2)
        assert cache.put(("a",), cold, nbytes=cold.nbytes)
        assert cache.get(("a",)).backend is cold

    def test_corrupt_entry_evicted_and_missed(self):
        cache = FactorCache(budget_mb=1)
        backend = _matrix()
        cache.put(("a",), backend, nbytes=backend.nbytes)
        backend[0, 0] = np.nan  # a buggy caller scribbled on the entry
        assert cache.get(("a",)) is None
        assert cache.stats()["corrupt"] == 1
        assert len(cache) == 0

    def test_rejects_bad_budget_and_exactness(self):
        with pytest.raises(SolverError, match="positive"):
            FactorCache(budget_mb=0)
        cache = FactorCache(budget_mb=1)
        with pytest.raises(SolverError, match="exactness"):
            cache.put(("a",), _matrix(), nbytes=1, exactness="warm")


class TestSharedCache:
    def test_singleton(self):
        assert shared_cache() is shared_cache()

    def test_resize_evicts(self):
        cache = shared_cache(budget_mb=1)
        cache.put(("a",), _matrix(), nbytes=700 * 1024)
        resized = shared_cache(budget_mb=0.5)
        assert resized is cache
        assert len(cache) == 0  # entry no longer fits

    def test_resolve(self):
        assert resolve_factor_cache(None) is None
        assert resolve_factor_cache(False) is None
        assert resolve_factor_cache(True) is shared_cache()
        assert resolve_factor_cache("shared") is shared_cache()
        private = resolve_factor_cache("private")
        assert isinstance(private, FactorCache)
        assert private is not shared_cache()
        assert resolve_factor_cache(private) is private
        with pytest.raises(SolverError, match="factor_cache"):
            resolve_factor_cache("speedy")

    def test_private_default_budget(self):
        private = resolve_factor_cache("private")
        assert private.budget_bytes == DEFAULT_BUDGET_MB * 1024 * 1024


class TestUpdatedPseudoinverse:
    def test_zero_delta_returns_parent(self, graph):
        pinv = laplacian_pseudoinverse(graph.adjacency)
        updated, edits = updated_pseudoinverse(
            graph.adjacency, pinv, graph.adjacency
        )
        assert updated is pinv
        assert edits == 0

    def test_weight_changes_match_recompute(self, graph):
        pinv = laplacian_pseudoinverse(graph.adjacency)
        edited = graph.adjacency.tolil()
        i, j = 0, graph.neighbors(0)[0]
        edited[i, j] = edited[j, i] = float(edited[i, j]) + 1.5
        edited[3, 7] = edited[7, 3] = 0.8  # new within-component edge
        target = GraphSnapshot(edited.tocsr(), graph.universe)
        updated, edits = updated_pseudoinverse(
            graph.adjacency, pinv, target.adjacency
        )
        assert edits == 2
        expected = laplacian_pseudoinverse(target.adjacency)
        np.testing.assert_allclose(updated, expected, atol=1e-8)

    def test_budget_exceeded_returns_none(self, graph):
        pinv = laplacian_pseudoinverse(graph.adjacency)
        edited = graph.adjacency.tolil()
        edited[0, 1] = edited[1, 0] = 5.0
        edited[2, 3] = edited[3, 2] = 5.0
        updated, edits = updated_pseudoinverse(
            graph.adjacency, pinv, edited.tocsr(), delta_budget=1
        )
        assert updated is None
        assert edits == 2

    def test_component_split_returns_none(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 1.0
        snapshot = GraphSnapshot(adjacency)
        pinv = laplacian_pseudoinverse(snapshot.adjacency)
        adjacency[1, 2] = adjacency[2, 1] = 0.0
        target = GraphSnapshot(adjacency)
        updated, _edits = updated_pseudoinverse(
            snapshot.adjacency, pinv, target.adjacency
        )
        assert updated is None

    def test_component_merge_updates(self, disconnected_graph):
        pinv = laplacian_pseudoinverse(disconnected_graph.adjacency)
        edited = disconnected_graph.adjacency.tolil()
        edited[1, 2] = edited[2, 1] = 0.9
        target = GraphSnapshot(edited.tocsr(),
                               disconnected_graph.universe)
        updated, edits = updated_pseudoinverse(
            disconnected_graph.adjacency, pinv, target.adjacency
        )
        assert edits == 1
        expected = laplacian_pseudoinverse(target.adjacency)
        np.testing.assert_allclose(updated, expected, atol=1e-10)

    def test_shape_mismatch_returns_none(self, graph, disconnected_graph):
        pinv = laplacian_pseudoinverse(graph.adjacency)
        updated, edits = updated_pseudoinverse(
            graph.adjacency, pinv, disconnected_graph.adjacency
        )
        assert updated is None and edits == 0


class TestBackendNbytes:
    def test_dense_with_adjacency(self, graph):
        pinv = laplacian_pseudoinverse(graph.adjacency)
        total = backend_nbytes(pinv, graph.adjacency)
        assert total > pinv.nbytes

    def test_unknown_backend_token_charge(self):
        assert backend_nbytes(object()) == 1024


# -- property: factor-updated commute distances track cold solves --------


@st.composite
def _edge_deltas(draw):
    """A handful of random undirected edge edits on a 12-node graph."""
    count = draw(st.integers(min_value=0, max_value=4))
    edits = []
    for _ in range(count):
        i = draw(st.integers(min_value=0, max_value=11))
        j = draw(st.integers(min_value=0, max_value=11))
        if i == j:
            continue
        weight = draw(st.sampled_from([0.25, 0.7, 1.0, 1.8, 3.0]))
        edits.append((min(i, j), max(i, j), weight))
    return edits


@settings(max_examples=40, deadline=None)
@given(edits=_edge_deltas(), seed=st.integers(min_value=0, max_value=9))
def test_factor_updated_commute_matches_cold(edits, seed):
    """Rank-one-updated L+ reproduces cold-pinvh commute times to 1e-8.

    Covers the zero-delta transition (empty edit list) and
    "sign-flipped" weight moves: every drawn edit *replaces* the
    current weight, so revisiting an existing edge with a smaller
    weight applies a negative Sherman-Morrison delta.
    """
    base = random_sparse_graph(12, mean_degree=3.0, seed=seed,
                               connected=True)
    pinv = laplacian_pseudoinverse(base.adjacency)
    edited = base.adjacency.tolil()
    for i, j, weight in edits:
        edited[i, j] = edited[j, i] = weight
    target = GraphSnapshot(edited.tocsr(), base.universe)
    updated, _edits = updated_pseudoinverse(
        base.adjacency, pinv, target.adjacency
    )
    if updated is None:
        # Structurally un-updatable (an edit split a component):
        # the contract is a clean refusal, never a wrong answer.
        return
    volume = target.volume()
    if volume <= 0:
        return
    diagonal = np.diag(updated)
    commute = volume * (
        diagonal[:, None] + diagonal[None, :] - 2.0 * updated
    )
    expected = commute_time_matrix(target.adjacency)
    np.testing.assert_allclose(commute, expected, atol=1e-8)
