"""Tests for the 17-node toy example (Section 2.2, Tables 1-2)."""

import numpy as np
import pytest

from repro.core import CadDetector
from repro.datasets import toy_example
from repro.datasets.toy import BENIGN_SCENARIOS


@pytest.fixture(scope="module")
def toy():
    return toy_example()


@pytest.fixture(scope="module")
def toy_scores(toy):
    return CadDetector(method="exact").score_sequence(toy.graph)[0]


class TestStructure:
    def test_seventeen_nodes(self, toy):
        assert toy.graph.num_nodes == 17
        assert len(toy.graph) == 2

    def test_labels(self, toy):
        labels = set(toy.graph.universe.labels)
        assert "b1" in labels and "r9" in labels

    def test_scenarios_applied(self, toy):
        g_t, g_t1 = toy.graph[0], toy.graph[1]
        for name, (u, v, before, after) in toy.scenarios.items():
            assert g_t.weight(u, v) == pytest.approx(before), name
            assert g_t1.weight(u, v) == pytest.approx(after), name

    def test_ground_truth_nodes(self, toy):
        assert set(toy.anomalous_nodes) == {
            "b1", "r1", "b4", "b5", "r7", "r8",
        }

    def test_anomalous_and_benign_disjoint(self, toy):
        assert not set(toy.anomalous_edges) & set(toy.benign_edges)


class TestTable1Reproduction:
    """The paper's Table 1: anomalous edge scores dominate benign."""

    def test_top_three_edges_are_the_anomalies(self, toy, toy_scores):
        top = {frozenset((u, v)) for u, v, _ in toy_scores.top_edges(3)}
        expected = {frozenset(edge) for edge in toy.anomalous_edges}
        assert top == expected

    def test_separation_factor(self, toy, toy_scores):
        matrix = toy_scores.edge_score_matrix()
        uni = toy.graph.universe
        anomalous = min(
            matrix[uni.index_of(u), uni.index_of(v)]
            for u, v in toy.anomalous_edges
        )
        benign = max(
            matrix[uni.index_of(u), uni.index_of(v)]
            for u, v in toy.benign_edges
        )
        # Table 1 shows ~45x separation; require at least 20x here.
        assert anomalous > 20 * benign

    def test_benign_edges_nonzero_but_small(self, toy, toy_scores):
        matrix = toy_scores.edge_score_matrix()
        uni = toy.graph.universe
        for u, v in toy.benign_edges:
            value = matrix[uni.index_of(u), uni.index_of(v)]
            assert 0 < value


class TestTable2Reproduction:
    """The paper's Table 2: node scores flag exactly the 6 actors."""

    def test_top_six_nodes(self, toy, toy_scores):
        top = {label for label, _ in toy_scores.top_nodes(6)}
        assert top == set(toy.anomalous_nodes)

    def test_uninvolved_nodes_score_zero(self, toy, toy_scores):
        uni = toy.graph.universe
        for label in ("b6", "b8", "r2", "r3", "r4", "r5", "r6", "r9"):
            assert toy_scores.node_scores[uni.index_of(label)] < 1.0

    def test_score_gap(self, toy, toy_scores):
        values = sorted(toy_scores.node_scores, reverse=True)
        assert values[5] > 10 * values[6]


class TestDetectOnToy:
    def test_algorithm1_recovers_ground_truth(self, toy):
        report = CadDetector(method="exact").detect(
            toy.graph, anomalies_per_transition=6
        )
        transition = report.transitions[0]
        assert set(transition.anomalous_nodes) == set(toy.anomalous_nodes)
        found_edges = {
            frozenset((u, v)) for u, v, _ in transition.anomalous_edges
        }
        assert found_edges == {
            frozenset(edge) for edge in toy.anomalous_edges
        }
