"""Tests for the Enron-like organizational email simulator."""

import numpy as np
import pytest

from repro.datasets import EnronLikeSimulator
from repro.datasets.enron import (
    ASSISTANT,
    KEY_PLAYER,
    VOLUME_PLAYER,
    month_labels,
)
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def data():
    return EnronLikeSimulator(seed=42).generate()


class TestMonthLabels:
    def test_paper_span(self):
        labels = month_labels()
        assert labels[0] == "1998-12"
        assert labels[-1] == "2002-11"
        assert len(labels) == 48

    def test_year_rollover(self):
        labels = month_labels(start_year=2000, start_month=11, count=3)
        assert labels == ["2000-11", "2000-12", "2001-01"]


class TestGeneration:
    def test_dimensions(self, data):
        assert data.graph.num_nodes == 151
        assert len(data.graph) == 48

    def test_time_labels(self, data):
        assert data.graph[0].time == "1998-12"
        assert data.graph[47].time == "2002-11"

    def test_named_actors_present(self, data):
        for actor in (KEY_PLAYER, VOLUME_PLAYER, ASSISTANT):
            assert actor in data.graph.universe

    def test_roles_cover_roster(self, data):
        assert set(data.roles) == set(data.graph.universe.labels)

    def test_integer_email_counts(self, data):
        weights = data.graph[10].adjacency.data
        np.testing.assert_array_equal(weights, np.round(weights))

    def test_deterministic(self):
        a = EnronLikeSimulator(seed=1).generate()
        b = EnronLikeSimulator(seed=1).generate()
        diff = a.graph[5].adjacency - b.graph[5].adjacency
        assert abs(diff).max() == 0.0

    def test_rejects_small_roster(self):
        with pytest.raises(DatasetError):
            EnronLikeSimulator(num_employees=50)

    def test_rejects_short_timeline(self):
        with pytest.raises(DatasetError):
            EnronLikeSimulator(num_months=12)


class TestGroundTruth:
    def test_relational_events_exclude_volume(self, data):
        names = {event.name for event in data.relational_events()}
        assert "volume_burst" not in names
        assert "key_player_hub" in names

    def test_boundary_transitions(self, data):
        hub = next(e for e in data.events if e.name == "key_player_hub")
        assert hub.boundary_transitions() == (31, 34)

    def test_ground_truth_actors(self, data):
        actors = data.ground_truth_actors(31)
        assert KEY_PLAYER in actors
        assert VOLUME_PLAYER not in actors

    def test_active_window_superset(self, data):
        assert data.ground_truth_transitions() <= \
            data.active_event_transitions()

    def test_phases_partition_transitions(self, data):
        both = set(data.calm_transitions) | set(data.turmoil_transitions)
        assert both == set(range(47))
        assert not set(data.calm_transitions) & set(
            data.turmoil_transitions
        )


class TestEventSignatures:
    def test_key_player_hub_visible_in_degree(self, data):
        activity = data.graph.node_activity(KEY_PLAYER)
        hub_months = activity[32:35].mean()
        calm_months = activity[:24].mean()
        assert hub_months > 2 * calm_months

    def test_volume_player_no_new_contacts(self, data):
        """The volume burst amplifies existing ties: the actor's new
        contacts in the burst month stay in line with ordinary churn."""
        before = set(data.graph[31].neighbors(VOLUME_PLAYER))
        during = set(data.graph[32].neighbors(VOLUME_PLAYER))
        new = during - before
        # the key player by contrast forms dozens of new ties
        hub_before = set(data.graph[31].neighbors(KEY_PLAYER))
        hub_during = set(data.graph[32].neighbors(KEY_PLAYER))
        hub_new = hub_during - hub_before
        assert len(hub_new) > len(new)

    def test_volume_player_volume_multiplied(self, data):
        activity = data.graph.node_activity(VOLUME_PLAYER)
        assert activity[32] > 2 * activity[:24].mean()
