"""The cluster wire protocol: codec fidelity, framing, corruption.

The codec must round-trip everything the engine actually ships —
CSR arrays, int-keyed score dicts, tuples, pickled exceptions — with
dtypes and container types intact, because the deterministic merge
treats remote results exactly like local ones. Framing must survive
arbitrary TCP segmentation (byte-at-a-time feeds) and reject
corruption loudly (CRC) rather than scoring garbage.
"""

from __future__ import annotations

import pickle
import socket

import numpy as np
import pytest

from repro.cluster import protocol
from repro.cluster.protocol import (
    FrameDecoder,
    ProtocolError,
    decode_payload,
    encode_payload,
    pack_frame,
    recv_frame,
    send_frame,
)
from repro.exceptions import ParallelExecutionError
from repro.parallel.transport import encode_error


def round_trip(obj):
    return decode_payload(encode_payload(obj))


class TestCodec:
    def test_scalars_and_strings(self):
        doc = {"a": 1, "b": 2.5, "c": "text", "d": None,
               "e": True, "f": False}
        assert round_trip(doc) == doc

    def test_arrays_keep_dtype_and_shape(self):
        doc = {
            "data": np.linspace(0, 1, 7),
            "indices": np.arange(5, dtype=np.int64),
            "matrix": np.arange(6, dtype=np.float64).reshape(2, 3),
            "flags": np.array([True, False]),
        }
        out = round_trip(doc)
        for key, value in doc.items():
            assert out[key].dtype == value.dtype
            assert out[key].shape == value.shape
            np.testing.assert_array_equal(out[key], value)

    def test_array_values_are_bit_identical(self):
        values = np.random.default_rng(3).random(100)
        assert round_trip({"v": values})["v"].tobytes() \
            == values.tobytes()

    def test_tuples_and_lists_stay_distinct(self):
        out = round_trip({"t": (1, 2, 3), "l": [4, 5]})
        assert out["t"] == (1, 2, 3)
        assert isinstance(out["t"], tuple)
        assert out["l"] == [4, 5]
        assert isinstance(out["l"], list)

    def test_int_keyed_dicts(self):
        """Per-transition result maps are keyed by int — the JSON
        skeleton must not stringify them."""
        doc = {0: {"score": 1.0}, 3: {"score": 2.0}}
        out = round_trip(doc)
        assert set(out) == {0, 3}
        assert out[3]["score"] == 2.0

    def test_bytes_pass_through(self):
        payload = b"\x00\xffpickled"
        assert round_trip({"blob": payload})["blob"] == payload

    def test_numpy_scalars_become_python(self):
        out = round_trip({"n": np.int64(7), "x": np.float64(0.5)})
        assert out["n"] == 7 and out["x"] == 0.5
        assert isinstance(out["n"], int)
        assert isinstance(out["x"], float)

    def test_arbitrary_objects_pickle_through(self):
        out = round_trip({"s": {1, 2, 3}})
        assert out["s"] == {1, 2, 3}

    def test_deep_nesting(self):
        doc = {"runs": [({"a": np.arange(3)}, (1, "x"))]}
        out = round_trip(doc)
        np.testing.assert_array_equal(out["runs"][0][0]["a"],
                                      np.arange(3))
        assert out["runs"][0][1] == (1, "x")


class TestFraming:
    def test_decoder_handles_multiple_frames_per_feed(self):
        data = pack_frame(protocol.TASK, {"task_id": 1}) \
            + pack_frame(protocol.RESULT, {"task_id": 1, "ok": True})
        frames = FrameDecoder().feed(data)
        assert [kind for kind, _ in frames] \
            == [protocol.TASK, protocol.RESULT]
        assert frames[1][1]["ok"] is True

    def test_decoder_survives_byte_at_a_time(self):
        frame = pack_frame(protocol.CONFIGURE,
                           {"graph": np.arange(10.0)})
        decoder = FrameDecoder()
        collected = []
        for position in range(len(frame)):
            collected.extend(
                decoder.feed(frame[position:position + 1])
            )
        assert len(collected) == 1
        kind, document = collected[0]
        assert kind == protocol.CONFIGURE
        np.testing.assert_array_equal(document["graph"],
                                      np.arange(10.0))

    def test_crc_corruption_is_rejected(self):
        frame = bytearray(pack_frame(protocol.TASK, {"task_id": 9}))
        frame[-1] ^= 0xFF  # flip one payload byte
        with pytest.raises(ProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(frame))

    def test_bad_magic_is_rejected(self):
        frame = bytearray(pack_frame(protocol.TASK, {}))
        frame[0] = 0x58
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(frame))

    def test_send_and_recv_over_a_socket(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, protocol.HEARTBEAT, {"run": "abc"})
            kind, document = recv_frame(right)
            assert kind == protocol.HEARTBEAT
            assert document["run"] == "abc"
        finally:
            left.close()
            right.close()

    def test_clean_close_is_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()

    def test_mid_frame_close_is_protocol_error(self):
        left, right = socket.socketpair()
        try:
            frame = pack_frame(protocol.TASK, {"task_id": 2})
            left.sendall(frame[:len(frame) - 3])
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()


class TestFramingFuzz:
    """Seeded fuzzing of the decoder: arbitrary segmentation must be
    lossless, and any payload damage must raise ``ProtocolError`` —
    never a garbage frame, never a hang on complete input."""

    def documents(self):
        return [
            {"task_id": 1, "nodes": np.arange(40)},
            {"result": {0: {"score": np.linspace(0, 1, 17)}}},
            {"run": "tok", "blob": b"\x00\xff" * 33},
        ]

    def test_random_chunk_boundaries_are_lossless(self):
        rng = np.random.default_rng(1234)
        stream = b"".join(
            pack_frame(protocol.TASK, doc) for doc in self.documents()
        )
        for _trial in range(20):
            cuts = sorted(rng.integers(0, len(stream), size=9))
            pieces = np.split(np.frombuffer(stream, dtype=np.uint8),
                              cuts)
            decoder = FrameDecoder()
            frames = []
            for piece in pieces:
                frames.extend(decoder.feed(piece.tobytes()))
            assert len(frames) == len(self.documents())
            for (kind, out), doc in zip(frames, self.documents()):
                assert kind == protocol.TASK
                assert set(out) == set(doc)

    def test_truncated_frames_stay_pending_until_completed(self):
        frame = pack_frame(protocol.TASK, self.documents()[0])
        rng = np.random.default_rng(99)
        # Mid-header and mid-payload truncation points alike.
        for cut in {3, 12, *map(int, rng.integers(1, len(frame),
                                                  size=8))}:
            decoder = FrameDecoder()
            assert decoder.feed(frame[:cut]) == []
            frames = decoder.feed(frame[cut:])
            assert len(frames) == 1 and frames[0][0] == protocol.TASK

    def test_truncation_plus_close_raises_not_hangs(self):
        frame = pack_frame(protocol.TASK, {"task_id": 5})
        for cut in (1, 10, len(frame) - 1):  # header and payload
            left, right = socket.socketpair()
            try:
                left.sendall(frame[:cut])
                left.close()
                with pytest.raises(ProtocolError):
                    recv_frame(right)
            finally:
                right.close()

    def test_seeded_payload_flips_always_raise(self):
        rng = np.random.default_rng(7)
        frame = pack_frame(protocol.RESULT,
                           {"task_id": 3, "v": np.arange(64.0)})
        header_size = protocol._HEADER.size
        for position in rng.integers(header_size, len(frame),
                                     size=32):
            damaged = bytearray(frame)
            damaged[int(position)] ^= 0xFF
            with pytest.raises(ProtocolError):
                FrameDecoder().feed(bytes(damaged))

    def test_crc_valid_garbage_payload_raises_protocol_error(self):
        """A frame whose CRC is honest but whose payload is not the
        codec's output must fail as ``ProtocolError`` (not a raw
        ``ValueError``/``KeyError`` that would abort a run)."""
        import zlib

        for payload in (b"\x01\x02\x03garbage", b"", b"\xff" * 64):
            header = protocol._HEADER.pack(
                protocol.MAGIC, protocol.VERSION, protocol.TASK, 0,
                zlib.crc32(payload), len(payload),
            )
            with pytest.raises(ProtocolError):
                FrameDecoder().feed(header + payload)

    def test_decode_payload_wraps_decoder_crashes(self):
        import struct

        # Well-formed length prefix, invalid JSON skeleton: the json
        # decoder's ValueError must surface as ProtocolError.
        payload = struct.pack(">I", 3) + b"abc"
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(payload)
        # Valid JSON, bogus ndarray dtype string.
        document = b'{"x":{"__nd__":0}}'
        payload = (struct.pack(">I", len(document)) + document
                   + struct.pack(">H", 1)
                   + struct.pack(">HB", 4, 1) + b"zzzz"
                   + struct.pack(">Q", 0) + struct.pack(">Q", 0))
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(payload)


class TestErrorEncoding:
    def test_exception_round_trip(self):
        try:
            raise ValueError("boom with context")
        except ValueError as error:
            payload = encode_error(error)
        revived = pickle.loads(payload)
        assert isinstance(revived, ValueError)
        assert "boom with context" in str(revived)

    def test_unpicklable_errors_degrade_to_parallel_error(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        revived = pickle.loads(encode_error(Unpicklable("lost")))
        assert isinstance(revived, ParallelExecutionError)
        assert "lost" in str(revived)
