"""Network chaos: the proxy itself, and the cluster surviving it.

The proxy half proves the faults are real and deterministic: seeded
corruption damages the same bytes twice, cuts sever after an exact
byte count, stalls go half-open without a FIN, partitions buffer
rather than lose.

The cluster half proves the hardening: a corrupt frame evicts exactly
one worker connection (shard requeued, run completes), a half-open
worker is reaped by the heartbeat deadline, workers reconnect across
a coordinator crash — and every scenario still produces scores
bit-for-bit equal to the serial detector.
"""

from __future__ import annotations

import contextlib
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import CadDetector
from repro.cluster import ClusterCoordinator, ClusterEngine
from repro.cluster import protocol
from repro.cluster.worker import run_worker
from repro.observability import (
    MetricsRegistry,
    current_registry,
    disable,
    enable,
)
from repro.resilience import ChaosProxy, NetChaosSpec, NetFault

from .test_parallel_determinism import (
    assert_reports_bitwise_equal,
    make_sequence,
)


@pytest.fixture(autouse=True)
def isolated_registry():
    previous = current_registry()
    enable(MetricsRegistry())
    yield
    if previous is None:
        disable()
    else:
        enable(previous)


# -- proxy-level harness -----------------------------------------------------


class SinkServer:
    """Accepts connections and records every byte each one delivers."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()[:2]
        self.received: list[bytearray] = []
        self.eof = threading.Event()
        self._closed = False
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            buffer = bytearray()
            self.received.append(buffer)
            threading.Thread(
                target=self._drain, args=(conn, buffer), daemon=True,
            ).start()

    def _drain(self, conn, buffer):
        while True:
            try:
                chunk = conn.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            buffer.extend(chunk)
        self.eof.set()
        with contextlib.suppress(OSError):
            conn.close()

    def close(self):
        self._closed = True
        with contextlib.suppress(OSError):
            self._listener.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def send_through(proxy: ChaosProxy, data: bytes,
                 settle: float = 0.5) -> socket.socket:
    sock = socket.create_connection((proxy.host, proxy.port),
                                    timeout=5.0)
    sock.sendall(data)
    time.sleep(settle)
    return sock


def wait_for(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out on {message}"
        time.sleep(0.02)


def counter_total(name: str) -> float:
    """Sum of one counter across every label set (e.g. per worker)."""
    return sum(
        entry["value"]
        for entry in current_registry().state()["counters"]
        if entry["name"] == name
    )


class TestProxyForwarding:
    def test_faithful_forwarding_and_stats(self):
        payload = bytes(range(256)) * 16
        with SinkServer() as sink, \
                ChaosProxy(sink.host, sink.port) as proxy:
            sock = send_through(proxy, payload, settle=0)
            wait_for(lambda: sink.received
                     and len(sink.received[0]) == len(payload),
                     message="payload arrival")
            assert bytes(sink.received[0]) == payload
            sock.close()
            stats = proxy.stats()
            assert stats["connections"] == 1
            assert stats["bytes_up"] == len(payload)
            assert stats["corrupt_events"] == 0

    def test_corruption_is_deterministic(self):
        payload = bytes(range(256)) * 8
        spec = NetChaosSpec(faults=(
            NetFault(kind="corrupt", connection=0, after_bytes=100,
                     direction="up", flips=6),
        ))
        damaged = []
        for _round in range(2):
            with SinkServer() as sink, \
                    ChaosProxy(sink.host, sink.port,
                               spec=spec, seed=42) as proxy:
                sock = send_through(proxy, payload, settle=0)
                wait_for(lambda: sink.received
                         and len(sink.received[0]) == len(payload),
                         message="damaged payload arrival")
                damaged.append(bytes(sink.received[0]))
                sock.close()
                assert proxy.stats()["corrupt_events"] == 1
        assert damaged[0] == damaged[1]
        assert damaged[0] != payload
        flipped = sum(a != b for a, b in zip(damaged[0], payload))
        assert 1 <= flipped <= 6
        # Nothing before the trigger offset is touched.
        assert damaged[0][:100] == payload[:100]

    def test_cut_severs_after_exact_bytes(self):
        payload = b"x" * 4096
        spec = NetChaosSpec(faults=(
            NetFault(kind="cut", connection=0, after_bytes=1000,
                     direction="up"),
        ))
        with SinkServer() as sink, \
                ChaosProxy(sink.host, sink.port, spec=spec) as proxy:
            send_through(proxy, payload, settle=0)
            wait_for(sink.eof.is_set, message="cut EOF")
            assert len(sink.received[0]) == 1000
            assert proxy.stats()["cut_events"] == 1

    def test_stall_goes_half_open(self):
        spec = NetChaosSpec(faults=(
            NetFault(kind="stall", connection=0, after_bytes=0,
                     direction="up"),
        ))
        with SinkServer() as sink, \
                ChaosProxy(sink.host, sink.port, spec=spec) as proxy:
            sock = send_through(proxy, b"swallowed", settle=0.3)
            # Nothing arrived, yet nobody saw a FIN or RST.
            assert not sink.received or not sink.received[0]
            assert not sink.eof.is_set()
            assert proxy.stats()["stall_events"] == 1
            sock.setblocking(False)
            with pytest.raises(BlockingIOError):
                sock.recv(1)  # still open from the client's side
            sock.close()

    def test_partition_buffers_then_heals(self):
        payload = b"delayed" * 100
        with SinkServer() as sink, \
                ChaosProxy(sink.host, sink.port) as proxy:
            sock = send_through(proxy, b"before", settle=0)
            wait_for(lambda: sink.received
                     and len(sink.received[0]) == 6,
                     message="pre-partition delivery")
            proxy.partition()
            sock.sendall(payload)
            time.sleep(0.3)
            assert len(sink.received[0]) == 6  # frozen, not lost
            # New connections are refused while partitioned.
            probe = socket.create_connection(
                (proxy.host, proxy.port), timeout=5.0)
            wait_for(lambda: proxy.stats()["refused"] >= 1,
                     message="refused connection")
            probe.close()
            proxy.heal()
            wait_for(lambda: len(sink.received[0])
                     == 6 + len(payload),
                     message="post-heal delivery")
            sock.close()

    def test_timed_partition_heals_itself(self):
        with SinkServer() as sink, \
                ChaosProxy(sink.host, sink.port) as proxy:
            proxy.partition(duration=0.2)
            assert proxy.partitioned
            wait_for(lambda: not proxy.partitioned,
                     message="automatic heal")

    def test_upstream_reset_propagates_to_client(self):
        """An abortive upstream close (RST, the signature of a
        SIGKILLed peer with unread data) must reach the client.

        Regression: the pump swallowed ECONNRESET and exited without
        closing the client half, leaving the client a healthy-looking
        socket to a corpse — it would block on recv() forever while
        its sends kept landing in the proxy's buffer.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            with ChaosProxy(*listener.getsockname()[:2]) as proxy:
                client = socket.create_connection(
                    (proxy.host, proxy.port), timeout=5.0)
                upstream, _ = listener.accept()
                client.sendall(b"ping")
                assert upstream.recv(4) == b"ping"
                # l_onoff=1, l_linger=0: close() sends RST, not FIN.
                upstream.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                upstream.close()
                client.settimeout(5.0)
                try:
                    data = client.recv(1)
                except TimeoutError:
                    pytest.fail("client never learned the upstream "
                                "was reset")
                except OSError:
                    data = b""  # the reset itself surfaced: also fine
                assert data == b""
                client.close()
        finally:
            with contextlib.suppress(OSError):
                listener.close()

    def test_forward_failure_resets_the_sender(self):
        """When the destination dies, a sender mid-stream must get a
        reset instead of the proxy silently eating its bytes."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            with ChaosProxy(*listener.getsockname()[:2]) as proxy:
                client = socket.create_connection(
                    (proxy.host, proxy.port), timeout=5.0)
                upstream, _ = listener.accept()
                upstream.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                upstream.close()
                # Keep sending until the proxy's forward fails and the
                # reset comes back around; bounded, not eventual.
                deadline = time.monotonic() + 5.0
                with pytest.raises(OSError):
                    while True:
                        assert time.monotonic() < deadline, \
                            "sender never saw the reset"
                        client.sendall(b"x" * 1024)
                        time.sleep(0.01)
                client.close()
        finally:
            with contextlib.suppress(OSError):
                listener.close()

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            NetFault(kind="gremlin")
        with pytest.raises(ValueError, match="direction"):
            NetFault(kind="cut", direction="sideways")
        with pytest.raises(ValueError, match="after_bytes"):
            NetFault(kind="cut", after_bytes=-1)
        with pytest.raises(ValueError, match="latency"):
            NetChaosSpec(latency=-0.1)
        with pytest.raises(ValueError, match="bandwidth"):
            NetChaosSpec(bandwidth=0)
        assert NetChaosSpec().empty
        assert not NetChaosSpec(latency=0.01).empty


# -- cluster-level scenarios -------------------------------------------------


SRC = str(Path(__file__).resolve().parents[1] / "src")


def proxied_workers(proxy: ChaosProxy, count: int, max_runs: int = 1,
                    **kwargs):
    """Thread workers dialing the coordinator *through* the proxy.

    Cheap, but they share one process (and therefore one
    ``repro.parallel.worker._STATE``): only use them in scenarios
    where at most one worker is ever mid-run when a link drops.
    """
    threads = []
    for index in range(count):
        thread = threading.Thread(
            target=run_worker,
            args=(proxy.host, proxy.port),
            kwargs={"worker_id": f"chaos-{index}",
                    "max_runs": max_runs, **kwargs},
            daemon=True, name=f"chaos-worker-{index}",
        )
        thread.start()
        threads.append(thread)
    return threads


@contextlib.contextmanager
def proxied_worker_procs(proxy: ChaosProxy, count: int,
                         reconnect_backoff: float = 0.05,
                         reconnect_attempts: int = 20):
    """Real ``cad-detect cluster-worker`` subprocesses dialing the
    proxy — required when chaos evicts a worker mid-run (each process
    owns its worker state, so an eviction cannot bleed into a
    survivor)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster-worker",
             proxy.host, str(proxy.port),
             "--worker-id", f"chaos-{index}",
             "--max-runs", "1",
             "--reconnect-attempts", str(reconnect_attempts),
             "--reconnect-backoff", str(reconnect_backoff)],
            env=env,
        )
        for index in range(count)
    ]
    try:
        yield procs
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def register_frame_bytes(worker_id: str) -> int:
    """Wire size of one REGISTER frame — used to aim faults *past*
    registration so they land on in-run traffic."""
    return len(protocol.pack_frame(protocol.REGISTER, {
        "worker_id": worker_id,
        "pid": 2 ** 22,  # representative width
        "host": socket.gethostname(),
        "reconnect": False,
    }))


def serial_scores(graph):
    return CadDetector(
        method="exact", seed=13, seed_mode="content",
    ).detect(graph, anomalies_per_transition=3)


class TestClusterUnderChaos:
    def test_corrupt_frame_evicts_one_worker_bitwise(self):
        """Seeded corruption of one worker's uplink mid-run: the
        coordinator evicts that connection on the CRC failure,
        requeues its shard, and the run still matches serial."""
        graph = make_sequence(num_snapshots=6)
        serial = serial_scores(graph)
        trigger = register_frame_bytes("chaos-0") + 30
        spec = NetChaosSpec(faults=(
            NetFault(kind="corrupt", connection=0,
                     after_bytes=trigger, direction="up", flips=12),
        ))
        with ClusterCoordinator() as coordinator, \
                ChaosProxy(coordinator.host, coordinator.port,
                           spec=spec, seed=7) as proxy, \
                proxied_worker_procs(proxy, 2):
            coordinator.wait_for_workers(2, timeout=60)
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", chunk_size=1,
                method="exact", seed=13,
                heartbeat_interval=0.1, heartbeat_timeout=10.0,
            ).detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(serial, remote)
        assert counter_total("cluster_corrupt_frames_total") >= 1

    def test_half_open_worker_is_evicted_bitwise(self):
        """One worker's uplink silently stops flowing (no FIN): the
        heartbeat-idle deadline reaps it, its shard requeues, and the
        half-open eviction counter records the fault class."""
        graph = make_sequence(num_snapshots=6)
        serial = serial_scores(graph)
        trigger = register_frame_bytes("chaos-0") + 30
        spec = NetChaosSpec(faults=(
            NetFault(kind="stall", connection=0,
                     after_bytes=trigger, direction="up"),
        ))
        with ClusterCoordinator() as coordinator, \
                ChaosProxy(coordinator.host, coordinator.port,
                           spec=spec, seed=7) as proxy, \
                proxied_worker_procs(proxy, 2):
            coordinator.wait_for_workers(2, timeout=60)
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", chunk_size=1,
                method="exact", seed=13,
                heartbeat_interval=0.1, heartbeat_timeout=1.5,
            ).detect(graph, anomalies_per_transition=3)
        assert_reports_bitwise_equal(serial, remote)
        assert counter_total("cluster_half_open_evictions_total") >= 1

    def test_latency_and_throttling_change_nothing(self):
        """Pure slowness — latency plus a bandwidth cap — must not
        alter a single bit of the result."""
        graph = make_sequence(num_snapshots=4)
        serial = serial_scores(graph)
        spec = NetChaosSpec(latency=0.002, bandwidth=20e6)
        with ClusterCoordinator() as coordinator, \
                ChaosProxy(coordinator.host, coordinator.port,
                           spec=spec) as proxy:
            threads = proxied_workers(proxy, 2)
            coordinator.wait_for_workers(2, timeout=30)
            remote = ClusterEngine(
                coordinator, workers=2, min_workers=2,
                shard_by="transition", method="exact", seed=13,
            ).detect(graph, anomalies_per_transition=3)
        for thread in threads:
            thread.join(timeout=15)
        assert_reports_bitwise_equal(serial, remote)

    def test_workers_reconnect_across_coordinator_crash(self):
        """The coordinator dies without a goodbye; a replacement binds
        the same port. Parked workers notice the dropped link,
        re-dial through the proxy with backoff, re-register, and the
        replacement runs them to a bit-for-bit serial result."""
        graph = make_sequence(num_snapshots=5)
        serial = serial_scores(graph)
        placeholder = socket.socket(socket.AF_INET,
                                    socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET,
                               socket.SO_REUSEADDR, 1)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()

        def bind_coordinator(timeout=15.0):
            """Rebind the crashed coordinator's port; its just-closed
            connections can hold the address for a moment."""
            deadline = time.monotonic() + timeout
            while True:
                try:
                    return ClusterCoordinator(port=port)
                except OSError:
                    assert time.monotonic() < deadline
                    time.sleep(0.1)

        first = ClusterCoordinator(port=port)
        with ChaosProxy("127.0.0.1", port) as proxy:
            threads = proxied_workers(
                proxy, 2,
                reconnect_attempts=60, reconnect_backoff=0.05,
            )
            first.wait_for_workers(2, timeout=30)
            first.crash()  # SIGKILL-equivalent: no SHUTDOWN frames
            with bind_coordinator() as second:
                second.wait_for_workers(2, timeout=30)
                remote = ClusterEngine(
                    second, workers=2, min_workers=2,
                    shard_by="transition", method="exact", seed=13,
                ).detect(graph, anomalies_per_transition=3)
            for thread in threads:
                thread.join(timeout=15)
        assert_reports_bitwise_equal(serial, remote)
        assert counter_total("cluster_reconnects_total") >= 2


class TestWorkerExitCodes:
    def test_dead_link_mid_idle_with_no_budget_exits_zero(self):
        """Budget 0, idle drop: the worker may not reconnect, but it
        also lost no work — exit 0."""
        coordinator = ClusterCoordinator()
        result = {}

        def serve():
            result["code"] = run_worker(
                coordinator.host, coordinator.port,
                worker_id="lone", reconnect_attempts=0,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        coordinator.wait_for_workers(1, timeout=30)
        coordinator.crash()
        thread.join(timeout=15)
        assert result["code"] == 0

    def test_shutdown_exits_zero(self):
        coordinator = ClusterCoordinator()
        result = {}

        def serve():
            result["code"] = run_worker(
                coordinator.host, coordinator.port,
                worker_id="polite",
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        coordinator.wait_for_workers(1, timeout=30)
        coordinator.close()  # sends SHUTDOWN
        thread.join(timeout=15)
        assert result["code"] == 0

    def test_idle_worker_survives_a_link_flap(self):
        """A dropped-and-restored link while parked: the worker
        reconnects and is still usable for a later run."""
        with ClusterCoordinator() as coordinator, \
                ChaosProxy(coordinator.host,
                           coordinator.port) as proxy:
            threads = proxied_workers(
                proxy, 1, reconnect_attempts=20,
                reconnect_backoff=0.05,
            )
            coordinator.wait_for_workers(1, timeout=30)
            proxy.drop_connections()
            wait_for(
                lambda: counter_total("cluster_reconnects_total") >= 1,
                timeout=30, message="parked worker reconnect",
            )
            graph = make_sequence(num_snapshots=3)
            serial = serial_scores(graph)
            remote = ClusterEngine(
                coordinator, workers=1, min_workers=1,
                shard_by="transition", method="exact", seed=13,
            ).detect(graph, anomalies_per_transition=3)
            assert_reports_bitwise_equal(serial, remote)
        for thread in threads:
            thread.join(timeout=15)
