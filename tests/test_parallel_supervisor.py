"""Self-healing mechanics of the supervised worker pool: a killed or
hung worker loses its shard but not the run — the shard is requeued,
the worker respawned, and the merged report stays bit-for-bit equal to
an undisturbed serial run. Escalation fires only once budgets are
spent. Chaos injection itself is covered in
``tests/test_resilience_chaos.py``."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CadDetector,
    DynamicGraph,
    ParallelCadDetector,
    ParallelExecutionError,
)
from repro.graphs import perturb_weights, random_sparse_graph
from repro.observability import build_metrics_document, collecting
from repro.resilience.chaos import ChaosSpec


def make_sequence(num_snapshots=4, n=30, seed=3) -> DynamicGraph:
    snapshot = random_sparse_graph(n, mean_degree=3.0, seed=seed,
                                   connected=True)
    snapshots = [snapshot]
    for step in range(num_snapshots - 1):
        snapshots.append(perturb_weights(
            snapshots[-1], relative_noise=0.1, seed=seed + step + 1,
        ))
    return DynamicGraph(snapshots)


def assert_reports_identical(ours, theirs) -> None:
    assert ours.threshold == theirs.threshold
    assert len(ours.transitions) == len(theirs.transitions)
    for mine, other in zip(ours.transitions, theirs.transitions):
        assert mine.anomalous_edges == other.anomalous_edges
        assert mine.anomalous_nodes == other.anomalous_nodes
        assert np.array_equal(mine.scores.edge_scores,
                              other.scores.edge_scores)
        assert np.array_equal(mine.scores.node_scores,
                              other.scores.node_scores)


class TestHealing:
    def test_killed_worker_heals_bit_for_bit(self):
        graph = make_sequence(num_snapshots=5)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,)),  # first attempt dies
        )
        healed = detector.detect(graph, anomalies_per_transition=3)
        assert_reports_identical(healed, serial)
        assert detector.last_pool_retries >= 1

    def test_requeue_on_survivors_with_no_restart_budget(self):
        # max_worker_restarts=0: the killed worker is never replaced,
        # the surviving worker picks the requeued shard up.
        graph = make_sequence(num_snapshots=5)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,)),
            max_worker_restarts=0,
        )
        healed = detector.detect(graph, anomalies_per_transition=3)
        assert_reports_identical(healed, serial)
        assert detector.last_pool_restarts == 0
        assert detector.last_pool_retries >= 1

    def test_hung_worker_reaped_by_shard_deadline(self):
        graph = make_sequence(num_snapshots=4)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(hang_transitions=(1,), hang_seconds=30.0),
            shard_deadline=0.8,
        )
        healed = detector.detect(graph, anomalies_per_transition=3)
        assert_reports_identical(healed, serial)
        assert detector.last_pool_retries >= 1

    def test_straggler_changes_nothing(self):
        graph = make_sequence(num_snapshots=4)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(slow_transitions=(0, 1, 2),
                            slow_seconds=0.01),
        )
        report = detector.detect(graph, anomalies_per_transition=3)
        assert_reports_identical(report, serial)
        assert detector.last_pool_retries == 0
        assert detector.last_pool_restarts == 0


class TestEscalation:
    def test_permanent_kill_exhausts_retries_and_escalates(self):
        graph = make_sequence(num_snapshots=4)
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,), attempts=None),
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            detector.detect(graph, anomalies_per_transition=3)
        assert "checkpoint_path" in str(excinfo.value)

    def test_fault_tolerated_up_to_retry_budget(self):
        # attempts=2 kills the first attempt AND its first retry; with
        # max_shard_retries=2 the second retry still lands the shard.
        graph = make_sequence(num_snapshots=4)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,), attempts=2),
            max_shard_retries=2,
        )
        healed = detector.detect(graph, anomalies_per_transition=3)
        assert_reports_identical(healed, serial)
        assert detector.last_pool_retries >= 2

    def test_fault_beyond_retry_budget_escalates(self):
        graph = make_sequence(num_snapshots=4)
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,), attempts=2),
            max_shard_retries=1,
        )
        with pytest.raises(ParallelExecutionError):
            detector.detect(graph, anomalies_per_transition=3)


class TestObservability:
    def test_supervision_counters_recorded(self):
        graph = make_sequence(num_snapshots=5)
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            chaos=ChaosSpec(kill_transitions=(1,)),
        )
        with collecting() as registry:
            detector.detect(graph, anomalies_per_transition=3)
        document = build_metrics_document(registry)
        counters = document["counters"]
        names = {entry["name"] for entry in counters}
        assert "parallel_shard_retries_total" in names
        assert detector.last_pool_retries >= 1

    def test_checkpoint_written_when_escalating(self, tmp_path):
        # The escalation message directs users to resume; the partial
        # checkpoint it references must actually exist and work.
        graph = make_sequence(num_snapshots=5)
        path = tmp_path / "partial.npz"
        detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=4,
            checkpoint_path=path,
            chaos=ChaosSpec(kill_transitions=(1,), attempts=None),
        )
        with pytest.raises(ParallelExecutionError):
            detector.detect(graph, anomalies_per_transition=3)
        assert path.exists()
        resumed = ParallelCadDetector(
            workers=2, seed=4, checkpoint_path=path,
        ).detect(graph, anomalies_per_transition=3)
        serial = CadDetector(seed=4, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        assert_reports_identical(resumed, serial)
