"""Tests for the extended CLI commands (explain, convert, json-out)."""

import json

import pytest

from repro.cli import main
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
    write_temporal_edge_csv,
)


@pytest.fixture
def graph_file(tmp_path):
    base = community_pair_graph(community_size=10, p_in=0.6, seed=0)
    drifted = perturb_weights(base, 0.02, seed=1)
    matrix = drifted.adjacency.tolil()
    matrix[0, 19] = matrix[19, 0] = 3.0
    graph = DynamicGraph([
        base.with_time("jan"),
        GraphSnapshot(matrix.tocsr(), base.universe, "feb"),
    ])
    path = tmp_path / "graph.csv"
    write_temporal_edge_csv(graph, path)
    return path


class TestExplainCommand:
    def test_explains_node(self, graph_file, capsys):
        assert main(["explain", str(graph_file), "--node", "0"]) == 0
        out = capsys.readouterr().out
        assert "top contributors" in out
        assert "19" in out

    def test_unknown_node(self, graph_file, capsys):
        assert main(["explain", str(graph_file),
                     "--node", "nosuch"]) == 1
        assert "not in the graph" in capsys.readouterr().err

    def test_bad_transition(self, graph_file, capsys):
        assert main(["explain", str(graph_file), "--node", "0",
                     "--transition", "5"]) == 1
        assert "transition" in capsys.readouterr().err


class TestConvertCommand:
    @pytest.mark.parametrize("extension", [".json", ".npz"])
    def test_round_trip_through_format(self, graph_file, tmp_path,
                                       extension, capsys):
        converted = tmp_path / f"graph{extension}"
        assert main(["convert", str(graph_file), str(converted)]) == 0
        assert converted.exists()
        # the converted file is accepted by other commands
        assert main(["info", str(converted)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 20" in out

    def test_bad_destination_extension(self, graph_file, tmp_path,
                                       capsys):
        assert main(["convert", str(graph_file),
                     str(tmp_path / "graph.xml")]) == 1
        assert "extension" in capsys.readouterr().err

    def test_bad_source_extension(self, tmp_path, capsys):
        source = tmp_path / "graph.txt"
        source.write_text("whatever")
        assert main(["convert", str(source),
                     str(tmp_path / "out.json")]) == 1
        assert "extension" in capsys.readouterr().err


class TestJsonOut:
    def test_detect_writes_report(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["detect", str(graph_file), "-l", "2",
                     "--json-out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "repro-detection-report"
        assert document["detector"] == "CAD"
        flagged = [t for t in document["transitions"] if t["anomalous"]]
        assert flagged
        assert {"0", "19"} <= set(flagged[0]["nodes"][:4])
