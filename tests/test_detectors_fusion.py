"""Score fusion: combiners, validation, prequential calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import (
    COMBINE_MODES,
    DEFAULT_MEMBERS,
    FusionDetector,
    fisher_combine,
    stouffer_combine,
)
from repro.exceptions import DetectionError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


def fusion_sequence(steps=8, hit=5, seed=31):
    hit = min(hit, steps - 1)
    base = community_pair_graph(community_size=10, p_in=0.5,
                                p_out=0.05, seed=seed)
    snapshots = [base]
    for t in range(1, steps):
        snapshots.append(perturb_weights(snapshots[-1],
                                         relative_noise=0.02,
                                         seed=seed + t))
    matrix = snapshots[hit].adjacency.tolil()
    for offset in range(4):
        i, j = offset, 19 - offset
        matrix[i, j] = matrix[j, i] = 6.0
    snapshots[hit] = GraphSnapshot(matrix.tocsr(), base.universe)
    return DynamicGraph(snapshots)


class TestCombiners:
    def test_stouffer_uniform_weights(self):
        z = np.array([1.0, 2.0, 3.0])
        w = np.ones(3)
        assert stouffer_combine(z, w) == pytest.approx(6.0 / np.sqrt(3))

    def test_stouffer_weighting(self):
        z = np.array([0.0, 2.0])
        heavy_second = stouffer_combine(z, np.array([1.0, 3.0]))
        heavy_first = stouffer_combine(z, np.array([3.0, 1.0]))
        assert heavy_second > heavy_first

    def test_fisher_small_p_dominates(self):
        w = np.ones(2)
        strong = fisher_combine(np.array([0.01, 0.5]), w)
        weak = fisher_combine(np.array([0.4, 0.5]), w)
        assert strong > weak
        assert fisher_combine(np.array([1.0, 1.0]), w) == \
            pytest.approx(0.0)


class TestValidation:
    def test_empty_members(self):
        with pytest.raises(DetectionError):
            FusionDetector(members=())

    def test_duplicate_members(self):
        with pytest.raises(DetectionError):
            FusionDetector(members=("lad", "lad"))

    def test_unknown_member(self):
        with pytest.raises(DetectionError):
            FusionDetector(members=("lad", "wavelet"))

    def test_unknown_combine(self):
        with pytest.raises(DetectionError):
            FusionDetector(combine="mean")

    def test_weight_shape(self):
        with pytest.raises(DetectionError):
            FusionDetector(members=("lad", "act"), weights=[1.0])

    def test_weights_must_be_positive(self):
        with pytest.raises(DetectionError):
            FusionDetector(members=("lad", "act"), weights=[1.0, 0.0])

    def test_default_members(self):
        detector = FusionDetector()
        assert detector.members == DEFAULT_MEMBERS
        assert detector.combine == "stouffer"


class TestFusionDetector:
    @pytest.mark.parametrize("combine", COMBINE_MODES)
    def test_event_peaks_at_injected_transition(self, combine):
        graph = fusion_sequence(hit=5)
        detector = FusionDetector(combine=combine, seed=0)
        scored = detector.score_sequence(graph)
        events = [float(s.extras["event_score"][0]) for s in scored]
        assert all(np.isfinite(e) for e in events)
        assert int(np.argmax(events)) == 4

    def test_member_events_exposed(self, small_dynamic_graph):
        detector = FusionDetector(seed=0)
        scored = detector.score_sequence(small_dynamic_graph)
        member_events = scored[0].extras["member_events"]
        assert member_events.shape == (len(DEFAULT_MEMBERS),)
        assert np.all(np.isfinite(member_events))

    def test_deterministic_without_seed(self):
        graph = fusion_sequence(steps=5)
        a = FusionDetector().score_sequence(graph)
        b = FusionDetector().score_sequence(graph)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left.extras["event_score"],
                                          right.extras["event_score"])
            np.testing.assert_array_equal(left.node_scores,
                                          right.node_scores)

    def test_node_scores_fuse_member_rankings(self, small_dynamic_graph):
        detector = FusionDetector(members=("lad", "invariant"), seed=0)
        scored = detector.score_sequence(small_dynamic_graph)
        node_scores = scored[0].node_scores
        assert node_scores.shape == (40,)
        assert np.all(np.isfinite(node_scores))
        assert node_scores.max() > 0

    def test_pairwise_subset_members(self):
        graph = fusion_sequence(steps=5)
        detector = FusionDetector(members=("act", "lad"),
                                  weights=[2.0, 1.0], seed=0)
        scored = detector.score_sequence(graph)
        assert all(np.isfinite(s.extras["event_score"][0])
                   for s in scored)

    def test_streaming_state_round_trip(self):
        graph = fusion_sequence(steps=7)
        snapshots = list(graph)
        left = FusionDetector(seed=0)
        right = FusionDetector(seed=0)
        for g_t, g_t1 in zip(snapshots[:4], snapshots[1:5]):
            left.score_transition(g_t, g_t1)
        right.load_streaming_state(left.streaming_state())
        for g_t, g_t1 in zip(snapshots[4:6], snapshots[5:7]):
            a = left.score_transition(g_t, g_t1)
            b = right.score_transition(g_t, g_t1)
            np.testing.assert_array_equal(a.extras["event_score"],
                                          b.extras["event_score"])
            np.testing.assert_array_equal(a.node_scores, b.node_scores)

    def test_prequential_first_transition_is_finite(self,
                                                    small_dynamic_graph):
        # The first transition has no calibration history; the combined
        # score must still be finite (z=0 / p from an empty history).
        detector = FusionDetector(seed=0)
        scored = detector.score_sequence(small_dynamic_graph)
        assert np.isfinite(scored[0].extras["event_score"][0])
