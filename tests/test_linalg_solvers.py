"""Unit tests for the CG solver and the Laplacian solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConvergenceError, SolverError
from repro.linalg import (
    LaplacianSolver,
    conjugate_gradient,
    dense_laplacian,
    laplacian,
    laplacian_pseudoinverse,
)


def _spd_system(n=30, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    matrix = a @ a.T + n * np.eye(n)
    b = rng.standard_normal(n)
    return sp.csr_matrix(matrix), b


class TestConjugateGradient:
    def test_solves_spd(self):
        matrix, b = _spd_system()
        x = conjugate_gradient(matrix, b, tol=1e-12)
        np.testing.assert_allclose(matrix @ x, b, atol=1e-8)

    def test_jacobi_preconditioner(self):
        matrix, b = _spd_system(seed=1)
        inverse_diag = 1.0 / matrix.diagonal()
        x = conjugate_gradient(matrix, b, tol=1e-12,
                               preconditioner=inverse_diag)
        np.testing.assert_allclose(matrix @ x, b, atol=1e-8)

    def test_zero_rhs(self):
        matrix, _ = _spd_system()
        x = conjugate_gradient(matrix, np.zeros(matrix.shape[0]))
        assert np.all(x == 0.0)

    def test_singular_laplacian_in_range(self, random_connected_graph):
        lap = laplacian(random_connected_graph.adjacency)
        rng = np.random.default_rng(2)
        b = rng.standard_normal(lap.shape[0])
        b -= b.mean()  # project into range(L)
        x = conjugate_gradient(lap, b, tol=1e-10,
                               preconditioner=1.0 / lap.diagonal())
        np.testing.assert_allclose(lap @ x, b, atol=1e-6)

    def test_budget_exhaustion_raises(self):
        matrix, b = _spd_system(n=50, seed=3)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(matrix, b, tol=1e-14, max_iter=2)

    def test_shape_mismatch_raises(self):
        matrix, _ = _spd_system()
        with pytest.raises(SolverError):
            conjugate_gradient(matrix, np.zeros(3))

    def test_zero_curvature_raises(self):
        # The zero matrix is symmetric PSD with an empty range, so the
        # first search direction has exactly zero curvature while the
        # residual is still the full right-hand side.
        matrix = sp.csr_matrix((5, 5))
        with pytest.raises(SolverError, match="curvature"):
            conjugate_gradient(matrix, np.ones(5), tol=1e-12)

    def test_zero_curvature_accepts_converged_iterate(self):
        # A singular system whose in-range part is already solved at
        # x0: the remaining residual is pure null-space direction
        # (curvature exactly zero) but sits inside the sqrt(tol)
        # acceptance band, so CG returns instead of raising.
        matrix = sp.csr_matrix(np.diag([1.0, 1.0, 0.0]))
        b = np.array([1.0, -1.0, 1e-9])
        x = conjugate_gradient(matrix, b, tol=1e-16,
                               x0=np.array([1.0, -1.0, 0.0]))
        np.testing.assert_allclose(matrix @ x, [1.0, -1.0, 0.0],
                                   atol=1e-12)

    def test_matches_scipy(self):
        from scipy.sparse.linalg import cg as scipy_cg

        matrix, b = _spd_system(seed=4)
        ours = conjugate_gradient(matrix, b, tol=1e-12)
        theirs, info = scipy_cg(matrix, b, rtol=1e-12)
        assert info == 0
        np.testing.assert_allclose(ours, theirs, atol=1e-6)


class TestLaplacianSolver:
    @pytest.mark.parametrize("method", ["cg", "direct"])
    def test_matches_pseudoinverse(self, random_connected_graph, method):
        adjacency = random_connected_graph.adjacency
        solver = LaplacianSolver(adjacency, method=method, tol=1e-12)
        pseudo = laplacian_pseudoinverse(adjacency)
        rng = np.random.default_rng(7)
        for _ in range(3):
            b = rng.standard_normal(adjacency.shape[0])
            expected = pseudo @ (b - b.mean())
            np.testing.assert_allclose(
                solver.solve(b), expected, atol=1e-7
            )

    @pytest.mark.parametrize("method", ["cg", "direct"])
    def test_disconnected(self, disconnected_graph, method):
        solver = LaplacianSolver(disconnected_graph.adjacency,
                                 method=method)
        assert solver.num_components == 2
        b = np.array([1.0, -1.0, 2.0, 0.0])
        x = solver.solve(b)
        # zero mean per component
        assert x[:2].sum() == pytest.approx(0.0, abs=1e-10)
        assert x[2:].sum() == pytest.approx(0.0, abs=1e-10)
        pseudo = laplacian_pseudoinverse(disconnected_graph.adjacency)
        np.testing.assert_allclose(x, pseudo @ _project(b, solver),
                                   atol=1e-8)

    def test_isolated_nodes_get_zero(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        solver = LaplacianSolver(adjacency)
        x = solver.solve(np.array([1.0, 0.0, 5.0]))
        assert x[2] == 0.0

    def test_solve_many(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        solver = LaplacianSolver(adjacency, method="direct")
        rng = np.random.default_rng(8)
        rhs = rng.standard_normal((adjacency.shape[0], 4))
        stacked = solver.solve_many(rhs)
        for j in range(4):
            np.testing.assert_allclose(
                stacked[:, j], solver.solve(rhs[:, j]), atol=1e-12
            )

    def test_rejects_unknown_method(self, path_graph):
        with pytest.raises(SolverError):
            LaplacianSolver(path_graph.adjacency, method="magic")

    def test_rejects_bad_rhs_shape(self, path_graph):
        solver = LaplacianSolver(path_graph.adjacency)
        with pytest.raises(SolverError):
            solver.solve(np.zeros(7))
        with pytest.raises(SolverError):
            solver.solve_many(np.zeros((7, 2)))

    def test_cg_budget_exhaustion_surfaces(self, random_connected_graph):
        solver = LaplacianSolver(random_connected_graph.adjacency,
                                 method="cg", tol=1e-14, max_iter=1)
        b = np.random.default_rng(10).standard_normal(
            random_connected_graph.num_nodes
        )
        with pytest.raises(ConvergenceError):
            solver.solve(b)

    def test_pair_shape_mismatch_rejected(self, random_connected_graph):
        solver = LaplacianSolver(random_connected_graph.adjacency)
        with pytest.raises(SolverError, match="align"):
            solver.commute_times_for_pairs(np.array([0, 1]),
                                           np.array([2]))

    def test_solve_many_direct_matches_cg(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        rng = np.random.default_rng(11)
        rhs = rng.standard_normal((adjacency.shape[0], 5))
        direct = LaplacianSolver(adjacency, method="direct")
        cg = LaplacianSolver(adjacency, method="cg", tol=1e-12)
        np.testing.assert_allclose(direct.solve_many(rhs),
                                   cg.solve_many(rhs), atol=1e-7)

    def test_solve_many_direct_disconnected(self, disconnected_graph):
        # The batched direct path works per component and leaves
        # isolated structure untouched.
        solver = LaplacianSolver(disconnected_graph.adjacency,
                                 method="direct")
        rng = np.random.default_rng(12)
        rhs = rng.standard_normal((4, 3))
        stacked = solver.solve_many(rhs)
        for j in range(3):
            np.testing.assert_allclose(stacked[:, j],
                                       solver.solve(rhs[:, j]),
                                       atol=1e-12)
        # zero mean per component, column-wise
        np.testing.assert_allclose(stacked[:2].sum(axis=0), 0.0,
                                   atol=1e-10)
        np.testing.assert_allclose(stacked[2:].sum(axis=0), 0.0,
                                   atol=1e-10)

    def test_solve_many_direct_with_isolated_nodes(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 2.0
        solver = LaplacianSolver(adjacency, method="direct")
        rhs = np.random.default_rng(13).standard_normal((4, 2))
        stacked = solver.solve_many(rhs)
        np.testing.assert_array_equal(stacked[2], 0.0)
        np.testing.assert_array_equal(stacked[3], 0.0)
        for j in range(2):
            np.testing.assert_allclose(stacked[:, j],
                                       solver.solve(rhs[:, j]),
                                       atol=1e-12)

    def test_cg_and_direct_agree(self, random_connected_graph):
        adjacency = random_connected_graph.adjacency
        b = np.random.default_rng(9).standard_normal(adjacency.shape[0])
        x_cg = LaplacianSolver(adjacency, method="cg", tol=1e-12).solve(b)
        x_direct = LaplacianSolver(adjacency, method="direct").solve(b)
        np.testing.assert_allclose(x_cg, x_direct, atol=1e-7)


def _project(b: np.ndarray, solver: LaplacianSolver) -> np.ndarray:
    """Zero-mean projection of b per component of the solver's graph."""
    out = b.astype(float).copy()
    labels = solver.component_labels
    for c in range(solver.num_components):
        mask = labels == c
        out[mask] -= out[mask].mean()
    return out


class TestSolveManyEmptyComponents:
    """A component can lose every edge after sanitization (a block of
    NaN weights repaired to zeros): ``solve_many`` must treat the
    survivors normally and leave the stripped component at zero rather
    than crash or pollute other components."""

    @pytest.mark.parametrize("method", ["direct", "cg"])
    def test_fully_edgeless_graph(self, method):
        solver = LaplacianSolver(np.zeros((5, 5)), method=method)
        rhs = np.random.default_rng(14).standard_normal((5, 3))
        stacked = solver.solve_many(rhs)
        np.testing.assert_array_equal(stacked, 0.0)
        np.testing.assert_array_equal(solver.solve(rhs[:, 0]), 0.0)

    def test_zero_column_rhs(self, random_connected_graph):
        solver = LaplacianSolver(random_connected_graph.adjacency,
                                 method="direct")
        n = random_connected_graph.num_nodes
        stacked = solver.solve_many(np.zeros((n, 0)))
        assert stacked.shape == (n, 0)

    @pytest.mark.parametrize("method", ["direct", "cg"])
    def test_component_emptied_by_sanitization(self, method):
        from repro.graphs import sanitize_adjacency

        # Two 4-node blocks; the second is entirely NaN and the repair
        # policy zeroes it, leaving 4 isolated (edgeless) nodes.
        adjacency = np.zeros((8, 8))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 2.0
        adjacency[2, 3] = adjacency[3, 2] = 1.5
        adjacency[0, 3] = adjacency[3, 0] = 0.5
        adjacency[4:, 4:] = np.nan
        np.fill_diagonal(adjacency, 0.0)
        repaired, report = sanitize_adjacency(adjacency,
                                              policy="repair")
        assert report.repaired
        solver = LaplacianSolver(repaired, method=method)
        rhs = np.random.default_rng(15).standard_normal((8, 3))
        stacked = solver.solve_many(rhs)
        np.testing.assert_array_equal(stacked[4:], 0.0)
        # The healthy component solves exactly as it would alone.
        alone = LaplacianSolver(adjacency[:4, :4], method=method)
        np.testing.assert_allclose(
            stacked[:4], alone.solve_many(rhs[:4]), atol=1e-8,
        )
        for j in range(3):
            np.testing.assert_allclose(stacked[:, j],
                                       solver.solve(rhs[:, j]),
                                       atol=1e-10)
