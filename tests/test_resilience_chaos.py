"""The chaos harness itself (``repro.resilience.chaos``) and the
chaos parity gate: a run disturbed by a seeded worker kill must merge
bit-for-bit identical to an undisturbed serial baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CadDetector, DynamicGraph, ParallelCadDetector
from repro.graphs import perturb_weights, random_sparse_graph
from repro.resilience.chaos import (
    CHAOS_EXIT_CODE,
    ChaosSpec,
    drop_file,
    flip_bytes,
    truncate_tail,
)


class TestChaosSpec:
    def test_defaults_are_empty_and_single_attempt(self):
        spec = ChaosSpec()
        assert spec.empty
        assert spec.attempts == 1

    def test_lists_normalised_to_tuples(self):
        spec = ChaosSpec(kill_transitions=[1, 2],
                         hang_transitions=[3],
                         slow_transitions=[4])
        assert spec.kill_transitions == (1, 2)
        assert spec.hang_transitions == (3,)
        assert spec.slow_transitions == (4,)
        assert not spec.empty

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec(attempts=0)

    def test_fires_only_within_attempt_budget(self):
        spec = ChaosSpec(kill_transitions=(0,), attempts=2)
        assert spec.fires(0) and spec.fires(1)
        assert not spec.fires(2)

    def test_permanent_fault_fires_forever(self):
        spec = ChaosSpec(kill_transitions=(0,), attempts=None)
        assert all(spec.fires(attempt) for attempt in range(10))

    def test_apply_is_noop_off_target_and_off_attempt(self):
        # Would os._exit if it fired — surviving the call is the assert.
        spec = ChaosSpec(kill_transitions=(3,))
        spec.apply(transition=1, attempt=0)   # other transition
        spec.apply(transition=3, attempt=1)   # retry is healed
        ChaosSpec().apply(transition=3, attempt=0)  # empty spec

    def test_slow_fault_sleeps_without_failing(self):
        spec = ChaosSpec(slow_transitions=(0,), slow_seconds=0.0)
        spec.apply(transition=0, attempt=0)

    def test_exit_code_default(self):
        assert ChaosSpec().exit_code == CHAOS_EXIT_CODE

    def test_spec_pickles(self):
        import pickle

        spec = ChaosSpec(kill_transitions=(1,), attempts=None)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFileChaos:
    def test_truncate_tail(self, tmp_path):
        path = tmp_path / "file.bin"
        path.write_bytes(b"0123456789")
        assert truncate_tail(path, 4) == 6
        assert path.read_bytes() == b"012345"
        assert truncate_tail(path, 100) == 0
        assert path.read_bytes() == b""

    def test_flip_bytes_is_deterministic(self, tmp_path):
        original = bytes(range(64))
        first = tmp_path / "a.bin"
        second = tmp_path / "b.bin"
        first.write_bytes(original)
        second.write_bytes(original)
        flip_bytes(first, count=8, seed=7)
        flip_bytes(second, count=8, seed=7)
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes() != original

    def test_flip_bytes_tolerates_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        flip_bytes(path)
        assert path.read_bytes() == b""

    def test_drop_file(self, tmp_path):
        path = tmp_path / "checkpoint.npz"
        path.write_bytes(b"x")
        assert drop_file(path) is True
        assert not path.exists()
        assert drop_file(path) is False


class TestChaosParityGate:
    """The PR's acceptance gate: fixed chaos seed, kill one worker
    mid-run, merged output bit-for-bit equal to the undisturbed serial
    baseline (the SIGKILL+restart half of the gate lives in
    ``tests/test_service_wal.py`` and ``scripts/chaos_smoke.py``)."""

    CHAOS = ChaosSpec(kill_transitions=(1,))

    @staticmethod
    def sequence() -> DynamicGraph:
        snapshot = random_sparse_graph(24, mean_degree=3.0, seed=11,
                                       connected=True)
        snapshots = [snapshot]
        for step in range(4):
            snapshots.append(perturb_weights(
                snapshots[-1], relative_noise=0.15, seed=20 + step,
            ))
        return DynamicGraph(snapshots)

    def test_kill_one_worker_is_bit_for_bit_vs_serial(self):
        graph = self.sequence()
        serial = CadDetector(seed=7, seed_mode="content").detect(
            graph, anomalies_per_transition=3
        )
        undisturbed = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=7,
        ).detect(graph, anomalies_per_transition=3)
        chaotic_detector = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1, seed=7,
            chaos=self.CHAOS,
        )
        chaotic = chaotic_detector.detect(graph,
                                          anomalies_per_transition=3)
        assert chaotic_detector.last_pool_retries >= 1
        for report in (undisturbed, chaotic):
            assert report.threshold == serial.threshold
            for ours, theirs in zip(report.transitions,
                                    serial.transitions):
                assert ours.anomalous_edges == theirs.anomalous_edges
                assert ours.anomalous_nodes == theirs.anomalous_nodes
                assert np.array_equal(ours.scores.edge_scores,
                                      theirs.scores.edge_scores)
                assert np.array_equal(ours.scores.node_scores,
                                      theirs.scores.node_scores)

    def test_exact_backend_parity_under_chaos(self):
        graph = self.sequence()
        serial = CadDetector(method="exact").detect(
            graph, anomalies_per_transition=3
        )
        chaotic = ParallelCadDetector(
            workers=2, shard_by="transition", chunk_size=1,
            method="exact", chaos=self.CHAOS,
        ).detect(graph, anomalies_per_transition=3)
        assert chaotic.threshold == serial.threshold
        for ours, theirs in zip(chaotic.transitions, serial.transitions):
            assert np.array_equal(ours.scores.edge_scores,
                                  theirs.scores.edge_scores)
