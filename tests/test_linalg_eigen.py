"""Unit tests for from-scratch eigensolvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SolverError
from repro.linalg import (
    fiedler_vector,
    laplacian_eigenmaps,
    principal_eigenvector,
    principal_left_singular_vector,
    top_eigenpairs,
)


def _random_symmetric(n=25, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    return (a + a.T) / 2.0


class TestPrincipalEigenvector:
    def test_matches_numpy(self):
        matrix = _random_symmetric(seed=1)
        ours = principal_eigenvector(matrix)
        values, vectors = np.linalg.eigh(matrix)
        theirs = vectors[:, -1]
        if theirs[np.argmax(np.abs(theirs))] < 0:
            theirs = -theirs
        np.testing.assert_allclose(np.abs(ours), np.abs(theirs),
                                   atol=1e-5)

    def test_unit_norm(self):
        vector = principal_eigenvector(_random_symmetric(seed=2))
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_nonnegative_for_connected_adjacency(self,
                                                 random_connected_graph):
        vector = principal_eigenvector(random_connected_graph.adjacency)
        assert vector.min() > -1e-8  # Perron-Frobenius

    def test_sparse_input(self, random_connected_graph):
        dense = principal_eigenvector(
            random_connected_graph.adjacency.toarray()
        )
        sparse = principal_eigenvector(random_connected_graph.adjacency)
        np.testing.assert_allclose(dense, sparse, atol=1e-6)

    def test_near_degenerate_converges(self):
        # Two identical disjoint cliques: exactly degenerate top pair.
        block = np.ones((5, 5)) - np.eye(5)
        matrix = np.zeros((10, 10))
        matrix[:5, :5] = block
        matrix[5:, 5:] = block
        vector = principal_eigenvector(matrix)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_bipartite_spectrum_converges(self):
        # A weighted path is bipartite: eigenvalues come in +/- pairs,
        # so unshifted power iteration oscillates forever (regression:
        # ACT died with ConvergenceError on any bipartite snapshot).
        matrix = np.zeros((4, 4))
        for i, weight in zip(range(3), (1.0, 2.0, 1.2)):
            matrix[i, i + 1] = matrix[i + 1, i] = weight
        vector = principal_eigenvector(matrix)
        reference = np.linalg.eigh(matrix)[1][:, -1]
        reference *= np.sign(reference[np.argmax(np.abs(reference))])
        np.testing.assert_allclose(vector, reference, atol=1e-5)

    def test_empty_matrix_raises(self):
        with pytest.raises(SolverError):
            principal_eigenvector(np.zeros((0, 0)))


class TestTopEigenpairs:
    def test_matches_numpy(self):
        matrix = _random_symmetric(seed=3)
        values, vectors = top_eigenpairs(matrix, 3, seed=0)
        expected = np.linalg.eigvalsh(matrix)
        expected = expected[np.argsort(-np.abs(expected))][:3]
        np.testing.assert_allclose(np.abs(values), np.abs(expected),
                                   rtol=1e-5)
        # columns orthonormal
        gram = vectors.T @ vectors
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-6)

    def test_count_too_large(self):
        with pytest.raises(SolverError):
            top_eigenpairs(np.eye(3), 4)


class TestPrincipalLeftSingularVector:
    def test_matches_numpy_svd(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((40, 3))
        ours = principal_left_singular_vector(matrix)
        u, _s, _vt = np.linalg.svd(matrix, full_matrices=False)
        theirs = u[:, 0]
        if theirs[np.argmax(np.abs(theirs))] < 0:
            theirs = -theirs
        np.testing.assert_allclose(ours, theirs, atol=1e-8)

    def test_single_column_normalises(self):
        column = np.array([[3.0], [4.0]])
        result = principal_left_singular_vector(column)
        np.testing.assert_allclose(result, [0.6, 0.8])

    def test_zero_matrix(self):
        assert principal_left_singular_vector(
            np.zeros((4, 2))
        ).tolist() == [0.0] * 4

    def test_empty_raises(self):
        with pytest.raises(SolverError):
            principal_left_singular_vector(np.zeros((0, 0)))


class TestLaplacianEigenmaps:
    def test_fiedler_sign_splits_communities(self):
        from repro.graphs import community_pair_graph

        graph = community_pair_graph(community_size=15, p_in=0.6,
                                     p_out=0.02, seed=9)
        fiedler = fiedler_vector(graph.adjacency)
        first = np.sign(fiedler[:15])
        second = np.sign(fiedler[15:])
        # all of one community on one side, all of the other opposite
        assert np.all(first == first[0])
        assert np.all(second == second[0])
        assert first[0] != second[0]

    def test_shape(self, random_connected_graph):
        coords = laplacian_eigenmaps(random_connected_graph.adjacency,
                                     dim=3)
        assert coords.shape == (random_connected_graph.num_nodes, 3)

    def test_orthogonal_to_constant(self, random_connected_graph):
        coords = laplacian_eigenmaps(random_connected_graph.adjacency,
                                     dim=2)
        sums = coords.sum(axis=0)
        np.testing.assert_allclose(sums, 0.0, atol=1e-8)

    def test_dim_too_large(self):
        with pytest.raises(SolverError):
            laplacian_eigenmaps(np.zeros((3, 3)), dim=3)
