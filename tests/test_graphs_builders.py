"""Unit tests for graph builders."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    NodeUniverse,
    gaussian_similarity_graph,
    knn_graph,
    snapshot_from_dense,
    snapshot_from_edges,
    snapshot_from_networkx,
    universe_from_edges,
)


class TestUniverseFromEdges:
    def test_order_of_first_appearance(self):
        universe = universe_from_edges([
            [("b", "a", 1.0)],
            [("c", "a", 1.0)],
        ])
        assert universe.labels == ("b", "a", "c")

    def test_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            universe_from_edges([[]])


class TestSnapshotFromEdges:
    def test_basic(self, labeled_universe):
        snapshot = snapshot_from_edges(
            [("alice", "bob", 2.0)], labeled_universe
        )
        assert snapshot.weight("alice", "bob") == 2.0
        assert snapshot.weight("bob", "alice") == 2.0

    def test_duplicates_sum(self, labeled_universe):
        snapshot = snapshot_from_edges(
            [("alice", "bob", 1.0), ("bob", "alice", 2.0)],
            labeled_universe,
        )
        assert snapshot.weight("alice", "bob") == 3.0

    def test_duplicates_max(self, labeled_universe):
        snapshot = snapshot_from_edges(
            [("alice", "bob", 1.0), ("bob", "alice", 2.0)],
            labeled_universe, combine="max",
        )
        assert snapshot.weight("alice", "bob") == 2.0

    def test_self_loop_dropped(self, labeled_universe):
        snapshot = snapshot_from_edges(
            [("alice", "alice", 5.0)], labeled_universe
        )
        assert snapshot.num_edges == 0

    def test_unknown_node_raises(self, labeled_universe):
        with pytest.raises(GraphConstructionError):
            snapshot_from_edges([("alice", "zed", 1.0)], labeled_universe)

    def test_negative_weight_raises(self, labeled_universe):
        with pytest.raises(GraphConstructionError):
            snapshot_from_edges([("alice", "bob", -1.0)], labeled_universe)

    def test_bad_combine_raises(self, labeled_universe):
        with pytest.raises(GraphConstructionError):
            snapshot_from_edges([], labeled_universe, combine="min")

    def test_empty_edges_ok(self, labeled_universe):
        snapshot = snapshot_from_edges([], labeled_universe)
        assert snapshot.num_edges == 0


class TestGaussianSimilarityGraph:
    def test_close_points_strong_edge(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        snapshot = gaussian_similarity_graph(points)
        assert snapshot.weight(0, 1) > snapshot.weight(0, 2)

    def test_weights_match_formula(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        snapshot = gaussian_similarity_graph(points)
        assert snapshot.weight(0, 1) == pytest.approx(np.exp(-5.0))

    def test_scale(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        snapshot = gaussian_similarity_graph(points, scale=5.0)
        assert snapshot.weight(0, 1) == pytest.approx(np.exp(-1.0))

    def test_rejects_1d(self):
        with pytest.raises(GraphConstructionError):
            gaussian_similarity_graph(np.array([1.0, 2.0]))


class TestKnnGraph:
    def test_neighbor_count_lower_bound(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal(30)
        snapshot = knn_graph(features, k=3, bandwidth=1.0)
        degrees = (snapshot.adjacency > 0).sum(axis=1)
        assert np.all(np.asarray(degrees).ravel() >= 3)

    def test_value_space_connects_distant_similars(self):
        # nodes 0 and 3 share a value; 1, 2 differ
        features = np.array([1.0, 5.0, 9.0, 1.01])
        snapshot = knn_graph(features, k=1, bandwidth=1.0)
        assert snapshot.weight(0, 3) > 0.9

    def test_kernel_weight_formula(self):
        features = np.array([0.0, 2.0, 100.0])
        snapshot = knn_graph(features, k=1, bandwidth=2.0)
        assert snapshot.weight(0, 1) == pytest.approx(np.exp(-4.0 / 8.0))

    def test_k_too_large_raises(self):
        with pytest.raises(GraphConstructionError):
            knn_graph(np.arange(4.0), k=4, bandwidth=1.0)

    def test_2d_features(self):
        features = np.array([[0.0, 0.0], [0.0, 0.1], [9.0, 9.0]])
        snapshot = knn_graph(features, k=1, bandwidth=1.0)
        assert snapshot.weight(0, 1) > snapshot.weight(0, 2)


class TestNetworkxBridge:
    def test_round_trip(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.Graph()
        graph.add_edge("a", "b", weight=2.5)
        graph.add_edge("b", "c")  # default weight 1
        snapshot = snapshot_from_networkx(graph)
        assert snapshot.weight("a", "b") == 2.5
        assert snapshot.weight("b", "c") == 1.0


class TestSnapshotFromDense:
    def test_with_universe(self, labeled_universe):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = matrix[1, 0] = 1.5
        snapshot = snapshot_from_dense(matrix, labeled_universe, time=7)
        assert snapshot.weight("alice", "bob") == 1.5
        assert snapshot.time == 7
