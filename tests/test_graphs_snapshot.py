"""Unit tests for NodeUniverse and GraphSnapshot."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError, NodeUniverseMismatchError
from repro.graphs import GraphSnapshot, NodeUniverse


class TestNodeUniverse:
    def test_index_round_trip(self, labeled_universe):
        for position, label in enumerate(labeled_universe):
            assert labeled_universe.index_of(label) == position
            assert labeled_universe.label_of(position) == label

    def test_of_size(self):
        universe = NodeUniverse.of_size(5)
        assert len(universe) == 5
        assert universe.labels == (0, 1, 2, 3, 4)

    def test_rejects_duplicates(self):
        with pytest.raises(GraphConstructionError):
            NodeUniverse(["a", "b", "a"])

    def test_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            NodeUniverse([])

    def test_contains(self, labeled_universe):
        assert "alice" in labeled_universe
        assert "eve" not in labeled_universe

    def test_equality_is_order_sensitive(self):
        assert NodeUniverse("ab") == NodeUniverse("ab")
        assert NodeUniverse("ab") != NodeUniverse("ba")

    def test_indices_of(self, labeled_universe):
        result = labeled_universe.indices_of(["carol", "alice"])
        assert result.tolist() == [2, 0]

    def test_hashable(self):
        assert {NodeUniverse("ab"), NodeUniverse("ab")} == {NodeUniverse("ab")}

    def test_unknown_label_raises_keyerror(self, labeled_universe):
        with pytest.raises(KeyError):
            labeled_universe.index_of("mallory")


class TestGraphSnapshotConstruction:
    def test_from_dense(self):
        snapshot = GraphSnapshot(np.array([[0.0, 2.0], [2.0, 0.0]]))
        assert snapshot.num_nodes == 2
        assert snapshot.num_edges == 1
        assert snapshot.weight(0, 1) == 2.0

    def test_from_sparse(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        snapshot = GraphSnapshot(matrix)
        assert snapshot.num_edges == 1

    def test_self_loops_removed(self):
        snapshot = GraphSnapshot(np.array([[5.0, 1.0], [1.0, 3.0]]))
        assert snapshot.weight(0, 0) == 0.0
        assert snapshot.volume() == 2.0

    def test_rejects_asymmetric(self):
        with pytest.raises(GraphConstructionError):
            GraphSnapshot(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_rejects_negative(self):
        with pytest.raises(GraphConstructionError):
            GraphSnapshot(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_nan(self):
        with pytest.raises(GraphConstructionError):
            GraphSnapshot(np.array([[0.0, np.nan], [np.nan, 0.0]]))

    def test_rejects_universe_size_mismatch(self, labeled_universe):
        with pytest.raises(GraphConstructionError):
            GraphSnapshot(np.zeros((2, 2)), labeled_universe)

    def test_rejects_non_square(self):
        with pytest.raises(GraphConstructionError):
            GraphSnapshot(np.zeros((2, 3)))


class TestGraphSnapshotAccessors:
    def test_degrees_and_volume(self, triangle_graph):
        degrees = triangle_graph.degrees()
        assert degrees.tolist() == [3.0, 4.0, 5.0]
        assert triangle_graph.volume() == 12.0

    def test_neighbors(self, path_graph):
        assert path_graph.neighbors(1) == [0, 2]
        assert path_graph.neighbors(0) == [1]

    def test_edge_list_upper_triangle(self, triangle_graph):
        edges = triangle_graph.edge_list()
        assert edges == [(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0)]

    def test_density(self, triangle_graph, path_graph):
        assert triangle_graph.density() == 1.0
        assert path_graph.density() == pytest.approx(0.5)

    def test_with_time(self, path_graph):
        timed = path_graph.with_time("march")
        assert timed.time == "march"
        assert timed.universe == path_graph.universe

    def test_require_same_universe(self, path_graph):
        other = GraphSnapshot(np.zeros((4, 4)),
                              NodeUniverse("abcd"))
        with pytest.raises(NodeUniverseMismatchError):
            path_graph.require_same_universe(other)

    def test_repr_mentions_counts(self, path_graph):
        assert "n=4" in repr(path_graph)
        assert "m=3" in repr(path_graph)
