"""Unit tests for the from-scratch ROC/AUC implementation."""

import numpy as np
import pytest

from repro.evaluation import auc_score, average_roc, roc_curve
from repro.exceptions import EvaluationError


class TestRocCurve:
    def test_perfect_ranking(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([4.0, 3.0, 2.0, 1.0])
        curve = roc_curve(labels, scores)
        assert curve.auc == pytest.approx(1.0)

    def test_inverted_ranking(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        assert auc_score(labels, scores) == pytest.approx(0.0)

    def test_random_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.random(5000) < 0.3
        scores = rng.random(5000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_give_mann_whitney(self):
        # all scores equal: AUC must be exactly 0.5
        labels = np.array([1, 0, 1, 0], dtype=bool)
        scores = np.ones(4)
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_matches_rank_statistic(self):
        rng = np.random.default_rng(1)
        labels = rng.random(300) < 0.2
        scores = rng.standard_normal(300) + labels * 0.8
        # Mann-Whitney U computed directly
        positive = scores[labels]
        negative = scores[~labels]
        wins = (positive[:, None] > negative[None, :]).sum()
        ties = (positive[:, None] == negative[None, :]).sum()
        expected = (wins + 0.5 * ties) / (positive.size * negative.size)
        assert auc_score(labels, scores) == pytest.approx(expected)

    def test_curve_endpoints(self):
        labels = np.array([1, 0, 1, 0], dtype=bool)
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        curve = roc_curve(labels, scores)
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == 1.0
        assert curve.true_positive_rate[-1] == 1.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(2)
        labels = rng.random(100) < 0.4
        scores = rng.standard_normal(100)
        curve = roc_curve(labels, scores)
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
        assert np.all(np.diff(curve.true_positive_rate) >= 0)

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            roc_curve(np.ones(4, dtype=bool), np.arange(4.0))
        with pytest.raises(EvaluationError):
            roc_curve(np.zeros(4, dtype=bool), np.arange(4.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            roc_curve(np.array([True, False]), np.arange(3.0))


class TestAverageRoc:
    def test_identical_curves_average_to_self(self):
        labels = np.array([1, 0, 1, 0], dtype=bool)
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        curve = roc_curve(labels, scores)
        grid, mean_tpr = average_roc([curve, curve], grid_size=11)
        np.testing.assert_allclose(
            mean_tpr, curve.interpolate_tpr(grid)
        )

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            average_roc([])

    def test_grid_bounds(self):
        labels = np.array([1, 0], dtype=bool)
        curve = roc_curve(labels, np.array([1.0, 0.0]))
        grid, mean_tpr = average_roc([curve], grid_size=5)
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert mean_tpr[-1] == pytest.approx(1.0)
