"""Failure isolation in the service: per-session circuit breakers,
request deadlines, backpressure-derived Retry-After, and degraded-mode
shedding under sustained queue pressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.commute import CommuteTimeCalculator
from repro.core.streaming import StreamingCadDetector
from repro.exceptions import (
    DetectionError,
    GraphConstructionError,
    SolverError,
)
from repro.observability import current_registry, disable, enable
from repro.service import (
    CapacityError,
    CircuitOpenError,
    DeadlineError,
    SessionManager,
    bounded_retry_after,
    make_server,
)
from repro.service.errors import RETRY_AFTER_CAP, RETRY_AFTER_FLOOR

from .test_service_sessions import random_payloads


@pytest.fixture
def payloads():
    return random_payloads()


def failing_push(error):
    """A StreamingCadDetector.push stand-in that always raises."""
    calls = []

    def push(self, snapshot):
        calls.append(snapshot)
        raise error

    push.calls = calls
    return push


class TestCircuitBreaker:
    def test_consecutive_server_faults_trip_the_breaker(
            self, tmp_path, payloads, monkeypatch):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 breaker_threshold=2,
                                 breaker_cooldown=60.0)
        sid = manager.create_session({"seed": 3})["session"]
        broken = failing_push(SolverError("synthetic solver fault"))
        monkeypatch.setattr(StreamingCadDetector, "push", broken)
        for _ in range(2):
            with pytest.raises(SolverError):
                manager.push(sid, payloads[0])
        with pytest.raises(CircuitOpenError) as excinfo:
            manager.push(sid, payloads[0])
        assert excinfo.value.retry_after > 0
        assert len(broken.calls) == 2  # breaker rejected before ingest
        info = manager.session_info(sid)
        assert info["breaker"]["open"] is True
        assert info["breaker"]["trips"] == 1
        assert "SolverError" in info["breaker"]["reason"]

    def test_half_open_probe_success_closes_fully(
            self, tmp_path, payloads, monkeypatch):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 breaker_threshold=1,
                                 breaker_cooldown=0.05)
        sid = manager.create_session({"seed": 3})["session"]
        broken = failing_push(SolverError("transient"))
        monkeypatch.setattr(StreamingCadDetector, "push", broken)
        with pytest.raises(SolverError):
            manager.push(sid, payloads[0])
        with pytest.raises(CircuitOpenError):
            manager.push(sid, payloads[0])
        monkeypatch.undo()  # the fault heals
        time.sleep(0.06)
        assert manager.push(sid, payloads[0])["pushed"] == 1
        info = manager.session_info(sid)
        assert info["breaker"]["open"] is False
        record = manager._get(sid)
        assert record.breaker_until == 0.0
        assert record.breaker_failures == 0

    def test_failed_probe_retrips_with_longer_cooldown(
            self, tmp_path, payloads, monkeypatch):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 breaker_threshold=1,
                                 breaker_cooldown=0.05)
        sid = manager.create_session({"seed": 3})["session"]
        broken = failing_push(SolverError("persistent"))
        monkeypatch.setattr(StreamingCadDetector, "push", broken)
        with pytest.raises(SolverError):
            manager.push(sid, payloads[0])
        time.sleep(0.06)
        # The half-open probe fails: one strike re-trips immediately
        # and the cooldown doubles.
        with pytest.raises(SolverError):
            manager.push(sid, payloads[0])
        record = manager._get(sid)
        assert record.breaker_trips == 2
        assert record.breaker_until - time.monotonic() > 0.05

    def test_client_errors_do_not_trip(self, tmp_path, payloads,
                                       monkeypatch):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 breaker_threshold=1)
        sid = manager.create_session({"seed": 3})["session"]
        broken = failing_push(
            GraphConstructionError("payload references unknown node")
        )
        monkeypatch.setattr(StreamingCadDetector, "push", broken)
        for _ in range(3):
            with pytest.raises(GraphConstructionError):
                manager.push(sid, payloads[0])
        info = manager.session_info(sid)
        assert info["breaker"]["open"] is False
        assert info["breaker"]["trips"] == 0
        monkeypatch.undo()
        assert manager.push(sid, payloads[0])["pushed"] == 1


class TestRequestDeadline:
    def test_contended_session_lock_times_out(self, tmp_path,
                                              payloads):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 request_deadline=0.1)
        sid = manager.create_session({"seed": 3})["session"]
        manager.push(sid, payloads[0])
        record = manager._get(sid)
        record.lock.acquire()  # a stuck request holds the session
        try:
            with pytest.raises(DeadlineError) as excinfo:
                manager.push(sid, payloads[1])
            assert excinfo.value.retry_after >= 0.1
        finally:
            record.lock.release()
        # The budget slot was released despite the timeout.
        assert manager._in_flight == 0
        assert manager.push(sid, payloads[1])["pushed"] == 1

    def test_deadline_does_not_trip_breaker(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path,
                                 request_deadline=0.05,
                                 breaker_threshold=1)
        sid = manager.create_session({"seed": 3})["session"]
        record = manager._get(sid)
        record.lock.acquire()
        try:
            with pytest.raises(DeadlineError):
                manager.push(sid, payloads[0])
        finally:
            record.lock.release()
        assert manager.session_info(sid)["breaker"]["trips"] == 0


class TestRetryAfter:
    def test_estimate_is_queue_depth_times_mean_latency(
            self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=2)
        sid = manager.create_session({"seed": 3})["session"]
        for _ in range(4):
            manager._observe_latency(2.0, 1)
        manager._acquire_ingest(2)
        try:
            with pytest.raises(CapacityError) as excinfo:
                manager.push(sid, payloads[0])
        finally:
            manager._release_ingest(2)
        # The estimate (queue depth x mean latency = 4.0) gets up to
        # 25% of anti-stampede jitter on top, never below the base.
        assert 4.0 <= excinfo.value.retry_after <= 4.0 * 1.25

    def test_estimate_is_clamped(self, tmp_path, payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=2)
        sid = manager.create_session({"seed": 3})["session"]
        for _ in range(4):
            manager._observe_latency(500.0, 1)
        manager._acquire_ingest(2)
        try:
            with pytest.raises(CapacityError) as excinfo:
                manager.push(sid, payloads[0])
        finally:
            manager._release_ingest(2)
        assert excinfo.value.retry_after == 120.0

    def test_oversized_batch_rejected_with_hint(self, tmp_path,
                                                payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=2)
        sid = manager.create_session({"seed": 3})["session"]
        with pytest.raises(CapacityError) as excinfo:
            manager.push(sid, {"snapshots": payloads[:3]})
        assert 1.0 <= excinfo.value.retry_after <= 1.25

    def test_latency_is_per_snapshot(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        manager._observe_latency(8.0, 4)  # a batch of 4 took 8s
        assert list(manager._latencies) == [2.0]


class TestRetryAfterBounds:
    """Every Retry-After hint stays inside [floor, cap] with bounded
    jitter — extreme estimates must never leak through to clients."""

    def test_jitter_stays_within_base_and_125_percent(self):
        for base in (0.5, 1.0, 7.0, 60.0):
            for _ in range(200):
                value = bounded_retry_after(base)
                assert base <= value <= base * 1.25

    def test_extreme_bases_clamp_to_floor_and_cap(self):
        assert bounded_retry_after(0.0) == RETRY_AFTER_FLOOR
        assert bounded_retry_after(1e-9) == RETRY_AFTER_FLOOR
        assert bounded_retry_after(1e9) == RETRY_AFTER_CAP
        assert bounded_retry_after(float("inf")) == RETRY_AFTER_CAP
        for _ in range(200):
            value = bounded_retry_after(119.9)
            assert RETRY_AFTER_FLOOR <= value <= RETRY_AFTER_CAP

    def test_hint_is_client_friendly(self):
        # Three decimals at most: the value goes straight into a
        # Retry-After header and JSON body.
        value = bounded_retry_after(1.0)
        assert value == round(value, 3)


class TestDegradedMode:
    def make_manager(self, tmp_path):
        return SessionManager(checkpoint_dir=tmp_path, max_queue=8,
                              degrade_pressure=0.5, degrade_after=2)

    def test_sustained_pressure_sheds_then_recovers(self, tmp_path):
        payloads = random_payloads(steps=12)
        manager = self.make_manager(tmp_path)
        sid = manager.create_session({"seed": 3})["session"]
        first = manager.push(
            sid, {"snapshots": payloads[:4]}  # utilization 0.5
        )
        assert "degraded" not in first
        assert not manager.degraded
        second = manager.push(
            sid, {"snapshots": payloads[4:8]}  # second strike
        )
        assert second.get("degraded") is True
        assert manager.degraded
        record = manager._get(sid)
        assert record.degraded_pushes == 4
        # The override is transient — never left set between pushes.
        calculator = record.detector.detector.calculator
        assert calculator.method_override is None
        # Two low-utilization observations recover.
        third = manager.push(sid, payloads[8])  # 1/8, still degraded
        assert third.get("degraded") is True
        fourth = manager.push(sid, payloads[9])
        assert "degraded" not in fourth
        assert not manager.degraded
        assert manager.session_info(sid)["degraded_pushes"] == 5
        # The session still reports coherently across the mode flips.
        report = manager.report(sid)
        assert len(report["transitions"]) == 9
        assert report["degraded_pushes"] == 5

    def test_shedding_with_factor_cache_never_crosses_tiers(
            self, tmp_path):
        # Cache-enabled variant of the shedding regression: while the
        # manager is degraded the override scores on the approx
        # backend, and the factor cache must keep the exact entries
        # from ever satisfying those approx requests (and vice versa
        # after recovery) — the keys are method-tagged.
        from repro.linalg.factorcache import reset_shared_cache, shared_cache

        reset_shared_cache()
        try:
            payloads = random_payloads(steps=12)
            manager = self.make_manager(tmp_path)
            sid = manager.create_session({
                "seed": 3, "factor_cache": True, "seed_mode": "content",
            })["session"]
            manager.push(sid, {"snapshots": payloads[:4]})
            second = manager.push(sid, {"snapshots": payloads[4:8]})
            assert second.get("degraded") is True
            record = manager._get(sid)
            calculator = record.detector.detector.calculator
            assert calculator.method_override is None
            assert calculator.factor_cache is shared_cache()
            keys = list(shared_cache()._entries)
            assert keys, "factor cache never populated"
            # Both backends cached, every key method-tagged, and the
            # two tiers never share a key even for one digest.
            methods = {key[1] for key in keys}
            assert methods == {"exact", "approx"}
            assert len(keys) == len(set(keys))
            exact_keys = {k for k in keys if k[1] == "exact"}
            approx_keys = {k for k in keys if k[1] == "approx"}
            assert not exact_keys & approx_keys
            # Approx keys pin the projection inputs, so an override
            # flip can never be handed an entry built for other
            # parameters.
            assert all(len(k) > 2 for k in approx_keys)
            # Recovery: the next pushes are scored exact again and the
            # session still reports coherently.
            manager.push(sid, payloads[8])
            fourth = manager.push(sid, payloads[9])
            assert "degraded" not in fourth
            report = manager.report(sid)
            assert len(report["transitions"]) == 9
        finally:
            reset_shared_cache()

    def test_explicit_method_is_never_shed(self, tmp_path, payloads):
        manager = self.make_manager(tmp_path)
        sid = manager.create_session({"seed": 3,
                                      "method": "exact"})["session"]
        manager._degraded = True
        response = manager.push(sid, payloads[0])
        assert "degraded" not in response
        assert manager._get(sid).degraded_pushes == 0

    def test_rejections_count_as_full_pressure(self, tmp_path,
                                               payloads):
        manager = SessionManager(checkpoint_dir=tmp_path, max_queue=1,
                                 degrade_pressure=0.9, degrade_after=2)
        sid = manager.create_session({"seed": 3})["session"]
        manager._acquire_ingest(1)
        try:
            for _ in range(2):
                with pytest.raises(CapacityError):
                    manager.push(sid, payloads[0])
        finally:
            manager._release_ingest(1)
        assert manager.degraded

    def test_degraded_surfaces_in_listing_and_readyz(self, tmp_path):
        previous = current_registry()
        server = make_server(port=0, checkpoint_dir=tmp_path)
        try:
            manager = server.manager
            assert manager.list_sessions()["degraded"] is False
            manager._degraded = True
            assert manager.list_sessions()["degraded"] is True
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            from .test_service_http import Client

            client = Client(server.port)
            status, _, body = client.get("/readyz")
            assert status == 200
            assert body["status"] == "degraded"
            manager._degraded = False
            status, _, body = client.get("/readyz")
            assert status == 200
            assert body["status"] == "ready"
            server.shutdown()
            thread.join(timeout=10)
        finally:
            server.server_close()
            if previous is None:
                disable()
            else:
                enable(previous)


class TestMethodOverride:
    def test_override_wins_over_auto_and_explicit(self):
        calculator = CommuteTimeCalculator(method="auto",
                                           exact_limit=100)
        assert calculator.resolve_method(10) == "exact"
        calculator.method_override = "approx"
        assert calculator.resolve_method(10) == "approx"
        calculator.method_override = None
        assert calculator.resolve_method(10) == "exact"
        explicit = CommuteTimeCalculator(method="exact")
        explicit.method_override = "approx"
        assert explicit.resolve_method(10) == "approx"

    def test_invalid_override_rejected(self):
        calculator = CommuteTimeCalculator()
        with pytest.raises(DetectionError):
            calculator.method_override = "quantum"

    def test_override_is_not_part_of_the_spec(self):
        calculator = CommuteTimeCalculator()
        calculator.method_override = "approx"
        assert "method_override" not in calculator.spec()
        assert "_method_override" not in calculator.spec()
