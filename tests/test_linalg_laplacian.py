"""Unit tests for Laplacian construction and incidence factorisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    degree_vector,
    dense_laplacian,
    graph_volume,
    incidence_factors,
    laplacian,
    laplacian_quadratic_form,
)


class TestLaplacian:
    def test_rows_sum_to_zero(self, random_connected_graph):
        lap = laplacian(random_connected_graph.adjacency)
        rows = np.asarray(lap.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 0.0, atol=1e-12)

    def test_diagonal_is_degree(self, triangle_graph):
        lap = laplacian(triangle_graph.adjacency)
        np.testing.assert_allclose(
            lap.diagonal(), triangle_graph.degrees()
        )

    def test_dense_matches_sparse(self, triangle_graph):
        dense = dense_laplacian(triangle_graph.adjacency)
        sparse = laplacian(triangle_graph.adjacency).toarray()
        np.testing.assert_allclose(dense, sparse)

    def test_psd(self, random_connected_graph):
        lap = dense_laplacian(random_connected_graph.adjacency)
        values = np.linalg.eigvalsh(lap)
        assert values.min() > -1e-9

    def test_normalized_eigenvalue_range(self, random_connected_graph):
        lap = laplacian(random_connected_graph.adjacency, normalized=True)
        values = np.linalg.eigvalsh(lap.toarray())
        assert values.min() > -1e-9
        assert values.max() < 2.0 + 1e-9

    def test_normalized_isolated_nodes(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        lap = laplacian(adjacency, normalized=True).toarray()
        assert lap[2, 2] == 0.0

    def test_dense_input(self):
        adjacency = np.array([[0.0, 2.0], [2.0, 0.0]])
        lap = laplacian(adjacency).toarray()
        np.testing.assert_allclose(lap, [[2.0, -2.0], [-2.0, 2.0]])


class TestDegreeVolume:
    def test_degree_vector_dense_sparse_agree(self, triangle_graph):
        dense = degree_vector(triangle_graph.adjacency.toarray())
        sparse = degree_vector(triangle_graph.adjacency)
        np.testing.assert_allclose(dense, sparse)

    def test_volume(self, triangle_graph):
        assert graph_volume(triangle_graph.adjacency) == 12.0


class TestIncidenceFactors:
    def test_reconstructs_laplacian(self, random_connected_graph):
        incidence, weights = incidence_factors(
            random_connected_graph.adjacency
        )
        reconstructed = (
            incidence.T @ sp.diags(weights) @ incidence
        ).toarray()
        expected = dense_laplacian(random_connected_graph.adjacency)
        np.testing.assert_allclose(reconstructed, expected, atol=1e-10)

    def test_shapes(self, triangle_graph):
        incidence, weights = incidence_factors(triangle_graph.adjacency)
        assert incidence.shape == (3, 3)
        assert weights.shape == (3,)

    def test_row_structure(self, path_graph):
        incidence, _ = incidence_factors(path_graph.adjacency)
        dense = incidence.toarray()
        # every row has exactly one +1 and one -1
        np.testing.assert_allclose(dense.sum(axis=1), 0.0)
        np.testing.assert_allclose(np.abs(dense).sum(axis=1), 2.0)

    def test_empty_graph(self):
        incidence, weights = incidence_factors(np.zeros((3, 3)))
        assert incidence.shape == (0, 3)
        assert weights.size == 0


class TestQuadraticForm:
    def test_matches_matrix_form(self, random_connected_graph):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(random_connected_graph.num_nodes)
        lap = dense_laplacian(random_connected_graph.adjacency)
        expected = float(x @ lap @ x)
        actual = laplacian_quadratic_form(
            random_connected_graph.adjacency, x
        )
        assert actual == pytest.approx(expected, rel=1e-10)

    def test_zero_on_constants(self, random_connected_graph):
        ones = np.ones(random_connected_graph.num_nodes)
        assert laplacian_quadratic_form(
            random_connected_graph.adjacency, ones
        ) == pytest.approx(0.0, abs=1e-10)
