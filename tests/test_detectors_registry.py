"""Registry-driven conformance: every method through the same plumbing.

Three layers of uniformity checks:

* the registry itself (lookup, catalogue, error messages);
* batch conformance — every registered detector runs the same toy
  sequence end-to-end through ``repro.detect`` with finite scores;
* streaming conformance — every streaming-capable registry method
  round-trips a mid-stream checkpoint bit-for-bit, and ``method=lad``
  / ``method=fusion`` service sessions survive evict/resume with
  score parity against an uninterrupted session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingCadDetector
from repro.detectors import (
    StreamingDetector,
    create_detector,
    get_method,
    list_methods,
    method_names,
    streaming_method_names,
)
from repro.detectors.registry import DetectorMethod, register_method
from repro.exceptions import DetectionError
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)
from repro.pipeline import detect
from repro.pipeline.serialize import snapshot_to_payload
from repro.service import BadRequestError, SessionManager

ALL_METHODS = sorted(method_names())
#: Streaming methods the wrapper serves (CAD has its own stream class).
WRAPPED_METHODS = sorted(set(streaming_method_names()) - {"cad"})


def drifting_sequence(steps=8, community_size=12, seed=7):
    """Community-pair sequence with one heavy cross-community event."""
    base = community_pair_graph(community_size=community_size,
                                p_in=0.5, p_out=0.05, seed=seed)
    snapshots = [base]
    for t in range(1, steps):
        snapshots.append(perturb_weights(snapshots[-1],
                                         relative_noise=0.03,
                                         seed=seed + t))
    n = 2 * community_size
    matrix = snapshots[5].adjacency.tolil()
    for offset in range(3):
        i, j = offset, n - 1 - offset
        matrix[i, j] = matrix[j, i] = 4.0
    snapshots[5] = GraphSnapshot(matrix.tocsr(), base.universe)
    for t, snapshot in enumerate(snapshots):
        snapshots[t] = GraphSnapshot(snapshot.adjacency,
                                     base.universe, time=t)
    return DynamicGraph(snapshots)


@pytest.fixture(scope="module")
def sequence():
    return drifting_sequence()


class TestRegistry:
    def test_catalogue_is_complete(self):
        assert set(ALL_METHODS) == {
            "act", "adj", "afm", "cad", "clc", "com",
            "fusion", "invariant", "lad",
            "dist-mcs", "dist-edit", "dist-modality", "dist-spectral",
        }

    def test_streaming_subset(self):
        streaming = set(streaming_method_names())
        assert {"cad", "act", "lad", "invariant", "fusion"} <= streaming
        assert streaming <= set(ALL_METHODS)

    def test_graph_distances_are_event_only(self):
        """The 2.4.2 distances register as non-streaming node-only
        methods (the paper's point: they detect events, not edges)."""
        for name in ("dist-mcs", "dist-edit", "dist-modality",
                     "dist-spectral"):
            entry = get_method(name)
            assert entry.family == "distances"
            assert not entry.streaming
            assert entry.node_only

    def test_graph_distance_factory_binds_measure(self):
        detector = create_detector("dist-edit")
        assert detector.distance == "edit"
        assert detector.name == "DIST-EDIT"

    def test_entries_are_described(self):
        for entry in list_methods():
            assert entry.name and entry.family and entry.description
            assert entry.factory is not None

    def test_get_method_unknown_lists_names(self):
        with pytest.raises(DetectionError) as excinfo:
            get_method("wavelet")
        message = str(excinfo.value)
        for name in ALL_METHODS:
            assert name in message

    def test_create_detector_forwards_kwargs(self):
        detector = create_detector("lad", rank=4)
        assert detector.rank == 4

    def test_register_rejects_duplicates(self):
        with pytest.raises(DetectionError):
            register_method(DetectorMethod(
                name="lad", family="x", description="dup",
                factory=lambda **kw: None,
            ))


class TestBatchConformance:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_detect_end_to_end(self, name, sequence):
        report = detect(sequence, detector=name,
                        anomalies_per_transition=4)
        assert len(report.transitions) == len(sequence) - 1
        assert np.isfinite(report.threshold)
        for transition in report.transitions:
            scores = transition.scores
            assert np.all(np.isfinite(scores.node_scores))
            assert np.all(np.isfinite(scores.edge_scores))
            assert scores.edge_scores.dtype != object

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_detect_is_deterministic(self, name, sequence):
        kwargs = {"detector": name, "anomalies_per_transition": 4}
        if name in ("cad", "com", "act", "lad", "invariant", "fusion"):
            kwargs["seed"] = 3
        first = detect(sequence, **kwargs)
        second = detect(sequence, **kwargs)
        for a, b in zip(first.transitions, second.transitions):
            np.testing.assert_array_equal(a.scores.node_scores,
                                          b.scores.node_scores)
            np.testing.assert_array_equal(a.scores.edge_scores,
                                          b.scores.edge_scores)


class TestStreamingConformance:
    @pytest.mark.parametrize("name", WRAPPED_METHODS)
    def test_checkpoint_restore_bit_for_bit(self, name, sequence):
        interrupted = StreamingDetector(name, warmup=2)
        uninterrupted = StreamingDetector(name, warmup=2)
        snapshots = list(sequence)
        for snapshot in snapshots[:5]:
            interrupted.push(snapshot)
            uninterrupted.push(snapshot)
        restored = StreamingDetector.restore(interrupted.checkpoint())
        for snapshot in snapshots[5:]:
            restored.push(snapshot)
            uninterrupted.push(snapshot)
        left = restored.finalize()
        right = uninterrupted.finalize()
        assert left.threshold == right.threshold
        for a, b in zip(left.transitions, right.transitions):
            np.testing.assert_array_equal(a.scores.node_scores,
                                          b.scores.node_scores)
            assert a.anomalous_nodes == b.anomalous_nodes

    @pytest.mark.parametrize("name", WRAPPED_METHODS)
    def test_checkpoint_file_round_trip(self, name, sequence, tmp_path):
        stream = StreamingDetector(name, warmup=2)
        for snapshot in list(sequence)[:5]:
            stream.push(snapshot)
        path = tmp_path / "stream.npz"
        stream.checkpoint(path)
        restored = StreamingDetector.restore(path)
        assert restored.method == name
        assert restored.num_transitions == stream.num_transitions
        assert restored.current_delta == stream.current_delta

    @pytest.mark.parametrize("name", WRAPPED_METHODS)
    def test_streaming_matches_batch(self, name, sequence):
        stream = StreamingDetector(name, warmup=2,
                                   anomalies_per_transition=4)
        for snapshot in sequence:
            stream.push(snapshot)
        streamed = stream.finalize()
        batch = detect(sequence, detector=name,
                       anomalies_per_transition=4)
        assert streamed.threshold == batch.threshold
        assert [t.anomalous_nodes for t in streamed.transitions] == \
            [t.anomalous_nodes for t in batch.transitions]

    def test_cad_method_rejected_by_wrapper(self):
        with pytest.raises(DetectionError):
            StreamingDetector("cad")

    def test_non_streaming_method_rejected(self):
        with pytest.raises(DetectionError):
            StreamingDetector("adj")

    @pytest.mark.parametrize(
        "name", ["dist-mcs", "dist-edit", "dist-modality",
                 "dist-spectral"])
    def test_graph_distances_rejected_by_wrapper(self, name):
        with pytest.raises(DetectionError):
            StreamingDetector(name)


class TestServiceParity:
    """``method=lad|fusion`` sessions behave exactly like CAD sessions
    under the service's evict/resume machinery."""

    @pytest.mark.parametrize("method", ["lad", "fusion"])
    def test_evict_resume_score_parity(self, method, sequence,
                                       tmp_path):
        config = {"method": method, "warmup": 2, "seed": 3}
        payloads = [snapshot_to_payload(s) for s in sequence]

        interrupted = SessionManager(max_sessions=1,
                                     checkpoint_dir=tmp_path / "a")
        sid = interrupted.create_session(config)["session"]
        for payload in payloads[:5]:
            interrupted.push(sid, payload)
        # A second session forces the first out of memory (LRU).
        other = interrupted.create_session({"seed": 99})["session"]
        interrupted.push(other, payloads[0])
        assert not interrupted.session_info(sid)["resident"]
        for payload in payloads[5:]:
            interrupted.push(sid, payload)

        reference = SessionManager(checkpoint_dir=tmp_path / "b")
        ref = reference.create_session(config)["session"]
        for payload in payloads:
            reference.push(ref, payload)

        left = interrupted.report(sid, include_scores=True)
        right = reference.report(ref, include_scores=True)
        left.pop("session")
        right.pop("session")
        assert left == right

    @pytest.mark.parametrize("method", WRAPPED_METHODS)
    def test_session_runs_wrapped_stream(self, method, sequence,
                                         tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        options = {"detector_options": {"rank": 6}} \
            if method == "lad" else {}
        sid = manager.create_session(
            {"method": method, "warmup": 2, **options}
        )["session"]
        for snapshot in sequence:
            manager.push(sid, snapshot_to_payload(snapshot))
        report = manager.finalize(sid)
        assert report["detector"].lower().startswith(method)
        assert np.isfinite(report["threshold"])

    def test_unknown_method_rejected_with_catalogue(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        with pytest.raises(BadRequestError) as excinfo:
            manager.create_session({"method": "wavelet"})
        message = str(excinfo.value)
        for name in ("auto", "exact", "approx", "cad",
                     "act", "lad", "invariant", "fusion"):
            assert name in message

    def test_event_only_distance_rejected_with_catalogue(self,
                                                         tmp_path):
        """dist-* methods are registered but not streaming-capable, so
        a session asking for one gets the regular 400 catalogue."""
        manager = SessionManager(checkpoint_dir=tmp_path)
        with pytest.raises(BadRequestError) as excinfo:
            manager.create_session({"method": "dist-spectral"})
        message = str(excinfo.value)
        assert "dist-spectral" in message
        for name in ("cad", "act", "lad", "invariant", "fusion"):
            assert name in message

    def test_bad_detector_options_rejected_at_create(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        with pytest.raises(BadRequestError):
            manager.create_session({
                "method": "lad",
                "detector_options": {"no_such_knob": 1},
            })

    def test_detector_options_rejected_for_cad(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        with pytest.raises(BadRequestError):
            manager.create_session({
                "method": "auto",
                "detector_options": {"rank": 6},
            })

    def test_incremental_rejected_for_wrapped(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        with pytest.raises(BadRequestError):
            manager.create_session({"method": "lad",
                                    "incremental": True})

    def test_cad_sessions_unchanged(self, sequence, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path)
        sid = manager.create_session({"seed": 3})["session"]
        record = manager._sessions[sid]
        assert isinstance(record.detector, StreamingCadDetector)
        for snapshot in list(sequence)[:5]:
            manager.push(sid, snapshot_to_payload(snapshot))
        assert manager.report(sid)["detector"] == "CAD-streaming"
