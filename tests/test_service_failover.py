"""Cross-replica failover: leases, fencing, adoption, store faults.

In-process counterpart of the two-replica chaos gates in
``scripts/chaos_smoke.py``: two SessionManagers share one
:class:`~repro.store.SharedStore`, replica A dies (or stalls) and
replica B must adopt its sessions and finish the stream **bit-for-bit**
identical to an undisturbed run, while A's late writes are fenced.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.observability import MetricsRegistry, disable, enable
from repro.resilience import ChaosStore, truncate_tail, write_checkpoint
from repro.resilience.checkpoint import FORMAT as CHECKPOINT_FORMAT
from repro.resilience.checkpoint import VERSION as CHECKPOINT_VERSION
from repro.service import NotOwnerError, SessionManager
from repro.service.wal import SessionWal
from repro.store import SharedStore, StoreUnavailableError

from .test_service_sessions import entries, random_payloads

#: Short enough to keep expiry tests fast, long enough that pushes
#: finish well inside one term.
TTL = 0.5

CONFIG = {"seed": 3, "warmup": 2}


@pytest.fixture
def payloads():
    return random_payloads()


@pytest.fixture
def registry():
    registry = enable(MetricsRegistry())
    yield registry
    disable()


def baseline(tmp_path, payloads):
    """Entries of an undisturbed single-replica run."""
    manager = SessionManager(checkpoint_dir=tmp_path / "baseline")
    sid = manager.create_session(CONFIG)["session"]
    for payload in payloads:
        manager.push(sid, payload)
    return entries(manager.report(sid))


def replica(tmp_path, name: str, ttl: float = TTL,
            **kwargs) -> SessionManager:
    store = kwargs.pop("store", None) or SharedStore(
        tmp_path / "shared", fsync=False
    )
    return SessionManager(store=store, replica_id=name, lease_ttl=ttl,
                          **kwargs)


class TestFailover:
    def test_crash_failover_is_bit_for_bit(self, tmp_path, payloads,
                                           registry):
        expected = baseline(tmp_path, payloads)
        a = replica(tmp_path, "replica-a")
        sid = a.create_session(CONFIG)["session"]
        for payload in payloads[:4]:
            a.push(sid, payload)
        # "SIGKILL": A vanishes without checkpointing or releasing.
        a.abandon()
        time.sleep(TTL + 0.2)
        b = replica(tmp_path, "replica-b")
        for payload in payloads[4:]:
            b.push(sid, payload)
        assert entries(b.report(sid)) == expected
        assert registry.counter_value(
            "service_failover_adoptions_total") >= 1

    def test_drain_hands_over_without_ttl_wait(self, tmp_path,
                                               payloads):
        expected = baseline(tmp_path, payloads)
        a = replica(tmp_path, "replica-a")
        sid = a.create_session(CONFIG)["session"]
        for payload in payloads[:4]:
            a.push(sid, payload)
        a.drain()  # checkpoints + releases the lease
        # No sleep: a released lease is adoptable immediately.
        b = replica(tmp_path, "replica-b")
        for payload in payloads[4:]:
            b.push(sid, payload)
        assert entries(b.report(sid)) == expected

    def test_startup_adoption_of_abandoned_sessions(self, tmp_path,
                                                    payloads):
        a = replica(tmp_path, "replica-a")
        sid = a.create_session(CONFIG)["session"]
        for payload in payloads[:4]:
            a.push(sid, payload)
        a.abandon()
        time.sleep(TTL + 0.2)
        b = replica(tmp_path, "replica-b")
        document = b.list_sessions()
        assert [info["session"]
                for info in document["sessions"]] == [sid]
        assert document["replica"] == "replica-b"


class TestOwnership:
    def test_push_on_foreign_live_session_is_not_owner(self, tmp_path,
                                                       payloads):
        a = replica(tmp_path, "replica-a")
        sid = a.create_session(CONFIG)["session"]
        a.push(sid, payloads[0])
        b = replica(tmp_path, "replica-b")
        with pytest.raises(NotOwnerError) as excinfo:
            b.push(sid, payloads[1])
        assert excinfo.value.status == 503
        assert 0.1 <= excinfo.value.retry_after <= 120.0
        # A is undisturbed.
        a.push(sid, payloads[1])

    def test_stale_replica_write_is_fenced(self, tmp_path, payloads,
                                           registry):
        a = replica(tmp_path, "replica-a")
        sid = a.create_session(CONFIG)["session"]
        for payload in payloads[:4]:
            a.push(sid, payload)
        # A pauses (GC pause / network partition): heartbeat stops but
        # the process lives on with its detector in memory.
        a._stop_heartbeat()
        time.sleep(TTL + 0.2)
        b = replica(tmp_path, "replica-b")
        b.push(sid, payloads[4])
        # A wakes up and tries to keep writing: the fencing token is
        # stale, the write must not land.
        with pytest.raises(NotOwnerError):
            a.push(sid, payloads[4])
        assert registry.counter_value(
            "service_fenced_writes_total") >= 1
        # B's stream is unharmed by A's attempt.
        for payload in payloads[5:]:
            b.push(sid, payload)
        assert entries(b.report(sid)) == baseline(tmp_path, payloads)

    def test_leases_off_keeps_single_replica_semantics(self, tmp_path,
                                                       payloads):
        # Without lease_ttl the store tier runs lease-free: restart on
        # the same directory adopts everything unconditionally.
        manager = SessionManager(checkpoint_dir=tmp_path / "solo")
        sid = manager.create_session(CONFIG)["session"]
        for payload in payloads:
            manager.push(sid, payload)
        expected = entries(manager.report(sid))
        manager.drain()
        revived = SessionManager(checkpoint_dir=tmp_path / "solo")
        assert entries(revived.report(sid)) == expected


class TestSlowStoreHeartbeat:
    def test_slow_lease_writes_do_not_fence_owner(self, tmp_path,
                                                  payloads, registry):
        """Slow (but succeeding) lease renewals near TTL/3 must not
        cost the rightful owner its sessions.

        The heartbeat fires every TTL/3; here every store write eats
        half that interval in latency, so renewals land late — but they
        do land, and the lease must never lapse: no spurious fencing of
        the owner, no adoption by a peer, pushes keep succeeding.
        """
        chaos = ChaosStore(SharedStore(tmp_path / "shared",
                                       fsync=False))
        chaos.write_latency = TTL / 6.0
        a = replica(tmp_path, "replica-a", store=chaos)
        sid = a.create_session(CONFIG)["session"]
        for payload in payloads[:3]:
            a.push(sid, payload)
        # Ride through several full lease terms of slow renewals.
        time.sleep(TTL * 3)
        assert registry.counter_value(
            "service_lease_renewals_total") >= 3
        # A peer on the same (healthy) store sees a live lease: the
        # session must NOT be adoptable.
        b = replica(tmp_path, "replica-b")
        with pytest.raises(NotOwnerError):
            b.push(sid, payloads[3])
        # The owner is unharmed and finishes the stream bit-for-bit.
        for payload in payloads[3:]:
            a.push(sid, payload)
        assert registry.counter_value(
            "service_fenced_writes_total") == 0
        assert registry.counter_value(
            "service_lease_expiries_total") == 0
        assert entries(a.report(sid)) == baseline(tmp_path, payloads)


class TestStoreFaults:
    def test_transient_partition_is_retried(self, tmp_path, payloads,
                                            registry):
        class Flaky(ChaosStore):
            """Fail the first N WAL appends, then recover."""

            def __init__(self, inner, failures):
                super().__init__(inner)
                self.failures = failures

            def append(self, key, data, guard=None):
                if self.failures > 0:
                    self.failures -= 1
                    raise StoreUnavailableError("transient blip")
                super().append(key, data, guard)

        store = Flaky(SharedStore(tmp_path / "shared", fsync=False),
                      failures=2)
        manager = SessionManager(store=store, replica_id="replica-a",
                                 lease_ttl=TTL)
        sid = manager.create_session(CONFIG)["session"]
        manager.push(sid, payloads[0])  # append retried, then lands
        assert registry.counter_value("store_write_retries_total") >= 2
        # The WAL holds the entry exactly once despite the retries.
        wal = SessionWal(store=store, key=f"{sid}.wal")
        contents = wal.read()
        assert contents.session_id == sid
        assert [seq for seq, _, _ in contents.entries] == [1]

    def test_hard_partition_surfaces_store_unavailable(self, tmp_path,
                                                       payloads):
        chaos = ChaosStore(SharedStore(tmp_path / "shared",
                                       fsync=False))
        manager = SessionManager(store=chaos, replica_id="replica-a",
                                 lease_ttl=TTL)
        sid = manager.create_session(CONFIG)["session"]
        chaos.partition("")  # deny every write
        with pytest.raises(StoreUnavailableError):
            manager.push(sid, payloads[0])
        chaos.heal()
        manager.push(sid, payloads[0])


class TestAtomicSidecars:
    """Satellite of the store tier: checkpoint artifacts are written
    atomically, and a torn sidecar is survivable."""

    def test_interrupted_checkpoint_keeps_previous_archive(
            self, tmp_path, monkeypatch):
        state = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "config": {}, "universe": [], "num_nodes": 0,
            "snapshots": [], "scored": [], "push_count": 0,
            "health": {}, "rng_state": None,
        }
        path = tmp_path / "ck.npz"
        write_checkpoint(state, path)
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full mid-write")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            write_checkpoint(state, path)
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_truncated_sidecar_with_full_history_wal_recovers(
            self, tmp_path, payloads):
        root = tmp_path / "ck"
        manager = SessionManager(checkpoint_dir=root)
        sid = manager.create_session(CONFIG)["session"]
        for payload in payloads[:5]:
            manager.push(sid, payload)
        manager.drain()
        expected = entries(
            SessionManager(checkpoint_dir=root).report(sid)
        )
        # Tear the sidecar mid-file (what a non-atomic writer would
        # leave after a crash) and hand the WAL the full history.
        truncate_tail(root / f"{sid}.json", 32)
        wal = SessionWal(root / f"{sid}.wal")
        wal.delete()
        wal.append_create(sid, CONFIG)
        wal.append_snapshots(payloads[:5], start_seq=0)
        revived = SessionManager(checkpoint_dir=root)
        assert entries(revived.report(sid)) == expected
        assert (root / "quarantine" / f"{sid}.json").exists()
