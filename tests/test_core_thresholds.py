"""Unit tests for Algorithm 1's thresholding and δ selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CadDetector,
    OnlineThresholdSelector,
    anomaly_sets_at,
    minimal_edge_set,
    node_count_at,
    select_global_threshold,
    total_node_count,
)
from repro.core.results import TransitionScores
from repro.exceptions import ThresholdError
from repro.graphs import NodeUniverse


def _scores(edge_scores, rows=None, cols=None, n=None):
    edge_scores = np.asarray(edge_scores, dtype=float)
    m = edge_scores.size
    if rows is None:
        rows = np.arange(m)
        cols = np.arange(m) + 1
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if n is None:
        n = int(max(cols.max(initial=0), rows.max(initial=0))) + 1
    universe = NodeUniverse.of_size(max(n, 2))
    from repro.core import aggregate_node_scores

    return TransitionScores(
        universe=universe,
        edge_rows=rows,
        edge_cols=cols,
        edge_scores=edge_scores,
        node_scores=aggregate_node_scores(len(universe), rows, cols,
                                          edge_scores),
        detector="test",
    )


class TestMinimalEdgeSet:
    def test_residual_below_delta(self):
        scores = np.array([5.0, 3.0, 1.0, 0.5])
        mask = minimal_edge_set(scores, delta=2.0)
        # remove 5 -> residual 4.5; remove 3 -> 1.5 < 2 : stop
        assert mask.tolist() == [True, True, False, False]

    def test_total_below_delta_empty(self):
        mask = minimal_edge_set(np.array([0.5, 0.4]), delta=1.0)
        assert not mask.any()

    def test_total_equal_delta_selects(self):
        # residual must be strictly below delta; total == delta means
        # the constraint sum < delta is violated with S empty
        mask = minimal_edge_set(np.array([1.0]), delta=1.0)
        assert mask.tolist() == [True]

    def test_minimality(self):
        scores = np.array([4.0, 4.0, 4.0])
        mask = minimal_edge_set(scores, delta=5.0)
        assert mask.sum() == 2  # residual 4 < 5 after removing two

    def test_tiny_delta_selects_all_positive(self):
        scores = np.array([1.0, 2.0, 0.0])
        mask = minimal_edge_set(scores, delta=1e-15)
        assert mask.sum() == 2 or mask.sum() == 3

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ThresholdError):
            minimal_edge_set(np.array([1.0]), delta=0.0)

    def test_empty_scores(self):
        mask = minimal_edge_set(np.zeros(0), delta=1.0)
        assert mask.size == 0


class TestFloatDriftRegression:
    """Regression for the δ-cut float-drift bug.

    The historical implementation compared a ``np.sum`` total against a
    ``np.cumsum`` prefix. numpy's pairwise summation and cumsum's
    sequential summation round differently, so on mixed-magnitude score
    mass the residual ``total - prefix`` bottomed out at the drift —
    never below a δ smaller than it — and ``np.argmax`` of an all-False
    mask silently selected a single edge instead of (nearly) all of
    them.
    """

    def test_drifty_mass_still_meets_the_residual_contract(self):
        rng = np.random.default_rng(1)
        drifty_trials = 0
        for trial in range(10):
            scores = rng.random(200) * rng.choice(
                [1e-6, 1.0, 1e6], size=200
            )
            ordered = np.sort(scores)[::-1]
            drift = abs(float(np.sum(ordered))
                        - float(np.cumsum(ordered)[-1]))
            if drift == 0.0:
                continue
            drifty_trials += 1
            delta = drift / 2
            mask = minimal_edge_set(scores, delta=delta)
            # Algorithm 1's defining constraint: the unselected score
            # mass must fall strictly below delta. Pre-fix, the cut
            # degenerated to a single edge and left ~the whole mass.
            assert float(scores[~mask].sum()) < delta
            assert mask.sum() > 100
        # seed 1 produces drift on trials 0, 1 and 8; if numpy's
        # summation ever changes, this guard flags the test as inert.
        assert drifty_trials >= 2

    def test_residual_never_negative(self):
        # One consistent cumulative sum ends at exactly 0.0; the clamp
        # protects against tiny negative residuals re-ordering the cut.
        scores = np.array([1e6, 1.0, 1e-6] * 50)
        mask = minimal_edge_set(scores, delta=1e-9)
        assert float(scores[~mask].sum()) < 1e-9


class TestMinimalEdgeSetProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_smaller_delta_selects_superset(self, seed, n):
        rng = np.random.default_rng(seed)
        scores = rng.random(n) * rng.choice([1e-6, 1.0, 1e6], size=n)
        total = float(scores.sum())
        if total <= 0:
            return
        big = total * rng.uniform(0.05, 0.95)
        small = big * rng.uniform(0.01, 0.99)
        loose = minimal_edge_set(scores, delta=big)
        tight = minimal_edge_set(scores, delta=small)
        assert bool(np.all(tight[loose]))  # loose ⊆ tight

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_vanishing_delta_selects_every_positive_edge(self, seed, n):
        rng = np.random.default_rng(seed)
        scores = rng.random(n) * rng.choice([0.0, 1e-6, 1.0, 1e6],
                                            size=n)
        positive = scores > 0
        if not positive.any():
            return
        delta = float(scores[positive].min()) * 0.5
        if delta <= 0.0:
            delta = float(np.finfo(np.float64).tiny)
        mask = minimal_edge_set(scores, delta=delta)
        assert bool(np.all(mask[positive]))


class TestNodeCounts:
    def test_node_count_at(self):
        scores = _scores([5.0, 3.0, 1.0])
        # delta=2: edges (0,1) and (1,2) selected -> nodes {0,1,2}
        assert node_count_at(scores, 2.0) == 3

    def test_zero_when_delta_large(self):
        scores = _scores([5.0, 3.0])
        assert node_count_at(scores, 100.0) == 0

    def test_total_node_count(self):
        a = _scores([5.0])
        b = _scores([0.1])
        assert total_node_count([a, b], delta=1.0) == 2


class TestGlobalThresholdSelection:
    def test_hits_budget(self, small_dynamic_graph):
        detector = CadDetector(method="exact")
        scored = detector.score_sequence(small_dynamic_graph)
        delta = select_global_threshold(scored, 2)
        total = total_node_count(scored, delta)
        assert total >= 2  # one transition, budget l=2

    def test_monotone_in_budget(self):
        transitions = [_scores([9.0, 5.0, 2.0, 1.0, 0.5, 0.2])]
        small = select_global_threshold(transitions, 2)
        large = select_global_threshold(transitions, 4)
        assert large <= small

    def test_calm_transitions_stay_silent(self):
        """A single global delta lets calm transitions report nothing."""
        turbulent = _scores([50.0, 40.0, 30.0])
        calm = _scores([0.01, 0.005])
        delta = select_global_threshold([turbulent, calm], 2)
        assert node_count_at(calm, delta) == 0
        assert node_count_at(turbulent, delta) >= 2

    def test_all_zero_raises(self):
        with pytest.raises(ThresholdError):
            select_global_threshold([_scores([0.0, 0.0])], 1)

    def test_empty_list_raises(self):
        with pytest.raises(ThresholdError):
            select_global_threshold([], 1)

    def test_budget_above_support(self):
        scores = _scores([1.0])  # at most 2 nodes available
        delta = select_global_threshold([scores], 50)
        assert node_count_at(scores, delta) == 2

    def test_wide_magnitude_mass_meets_budget(self):
        """Bracket hardening: with score mass spanning 12 orders of
        magnitude, the bisection's low probe must still sit below any
        δ that meets the budget — the historical ``top * 1e-12`` probe
        could start *above* the δ the tiny-score transitions need."""
        rng = np.random.default_rng(7)
        transitions = []
        for exponent in (-6, -3, 0, 3, 6):
            magnitudes = rng.random(30) * 10.0 ** exponent
            rows = np.arange(30) * 2
            cols = rows + 1
            transitions.append(_scores(magnitudes, rows=rows, cols=cols))
        budget = 4
        delta = select_global_threshold(transitions, budget)
        total = total_node_count(transitions, delta)
        assert total >= budget * len(transitions)


class TestAnomalySetsAt:
    def test_nodes_sorted_by_score(self):
        scores = _scores([5.0, 3.0],
                         rows=np.array([0, 2]),
                         cols=np.array([1, 3]))
        _mask, nodes, node_scores = anomaly_sets_at(scores, 0.5)
        assert list(node_scores) == sorted(node_scores, reverse=True)
        assert set(nodes.tolist()) == {0, 1, 2, 3}

    def test_empty_when_quiet(self):
        scores = _scores([0.1])
        mask, nodes, node_scores = anomaly_sets_at(scores, 10.0)
        assert not mask.any()
        assert nodes.size == 0
        assert node_scores.size == 0


class TestOnlineSelector:
    def test_warmup_returns_none(self):
        selector = OnlineThresholdSelector(2, warmup=3)
        assert selector.update(_scores([5.0])) is None
        assert selector.current() is None

    def test_warmup_one_absorbs_first_transition(self):
        """warmup=1 must absorb one transition before emitting: the
        docstring's contract, which the historical off-by-one violated
        by emitting a δ on the very first update."""
        selector = OnlineThresholdSelector(1, warmup=1)
        assert selector.update(_scores([5.0, 1.0])) is None
        assert selector.current() is None
        delta = selector.update(_scores([4.0, 2.0]))
        assert delta is not None
        assert selector.current() == delta

    def test_warmup_two_absorbs_two_transitions(self):
        selector = OnlineThresholdSelector(1, warmup=2)
        assert selector.update(_scores([5.0, 1.0])) is None
        assert selector.update(_scores([4.0, 2.0])) is None
        assert selector.current() is None
        delta = selector.update(_scores([3.0, 3.0]))
        assert delta is not None
        assert selector.current() == delta

    def test_threshold_adapts(self):
        selector = OnlineThresholdSelector(1, warmup=1)
        selector.update(_scores([5.0, 1.0]))
        first = selector.update(_scores([6.0, 2.0]))
        second = selector.update(_scores([100.0, 50.0]))
        assert first is not None and second is not None
        assert second != first

    def test_all_zero_mass_returns_none(self):
        selector = OnlineThresholdSelector(1, warmup=1)
        assert selector.update(_scores([0.0])) is None
        assert selector.update(_scores([0.0])) is None
