"""Unit tests for the ACT baseline (Ide & Kashima)."""

import numpy as np
import pytest

from repro.baselines import ActDetector
from repro.graphs import (
    DynamicGraph,
    GraphSnapshot,
    community_pair_graph,
    perturb_weights,
)


@pytest.fixture
def stable_sequence():
    base = community_pair_graph(community_size=15, p_in=0.6, seed=1)
    snapshots = [base]
    for t in range(4):
        snapshots.append(perturb_weights(base, 0.02, seed=20 + t))
    return DynamicGraph(snapshots)


class TestActivityVector:
    def test_unit_norm_nonnegative(self, random_connected_graph):
        act = ActDetector()
        vector = act.activity_vector(random_connected_graph)
        assert np.linalg.norm(vector) == pytest.approx(1.0)
        assert vector.min() > -1e-8

    def test_edgeless_snapshot(self):
        act = ActDetector()
        vector = act.activity_vector(GraphSnapshot(np.zeros((4, 4))))
        assert vector.tolist() == [0.0] * 4


class TestScoring:
    def test_stable_sequence_low_scores(self, stable_sequence):
        act = ActDetector(window=2)
        scored = act.score_sequence(stable_sequence)
        events = [float(s.extras["event_score"][0]) for s in scored]
        assert max(events) < 0.05

    def test_structural_break_scores_high(self, stable_sequence):
        # replace the final snapshot with a very different structure
        snapshots = list(stable_sequence)
        flipped = community_pair_graph(community_size=15, p_in=0.6,
                                       seed=99)
        snapshots[-1] = GraphSnapshot(
            flipped.adjacency, stable_sequence.universe
        )
        act = ActDetector(window=2)
        scored = act.score_sequence(DynamicGraph(snapshots))
        events = [float(s.extras["event_score"][0]) for s in scored]
        assert events[-1] > 5 * max(events[:-1])

    def test_window_resets_between_sequences(self, stable_sequence):
        act = ActDetector(window=3)
        first = act.score_sequence(stable_sequence)
        second = act.score_sequence(stable_sequence)
        for a, b in zip(first, second):
            np.testing.assert_allclose(a.node_scores, b.node_scores)

    def test_no_edge_scores(self, stable_sequence):
        act = ActDetector()
        scored = act.score_sequence(stable_sequence)
        assert scored[0].num_scored_edges == 0

    def test_window_one_uses_current_vector(self, stable_sequence):
        act = ActDetector(window=1)
        g_t, g_t1 = stable_sequence[0], stable_sequence[1]
        scores = act.score_transition(g_t, g_t1)
        expected = np.abs(
            act.activity_vector(g_t1) - act.activity_vector(g_t)
        )
        np.testing.assert_allclose(scores.node_scores, expected,
                                   atol=1e-8)


class TestDetect:
    def test_flags_event_transition(self, stable_sequence):
        snapshots = list(stable_sequence)
        matrix = snapshots[-1].adjacency.tolil()
        # massively boost one node's row (a volume event ACT must see)
        matrix[0, :] = matrix[0, :] * 10
        matrix[:, 0] = matrix[:, 0] * 10
        snapshots[-1] = GraphSnapshot(matrix.tocsr(),
                                      stable_sequence.universe)
        act = ActDetector(window=2)
        report = act.detect(DynamicGraph(snapshots), top_nodes=3)
        flagged = [t.index for t in report.anomalous_transitions()]
        assert len(stable_sequence) - 2 in flagged
        final = report.transitions[-1]
        assert 0 in final.anomalous_nodes

    def test_top_nodes_bounded(self, stable_sequence):
        act = ActDetector()
        report = act.detect(stable_sequence, top_nodes=2)
        for transition in report.transitions:
            assert len(transition.anomalous_nodes) <= 2

    def test_explicit_threshold(self, stable_sequence):
        act = ActDetector()
        report = act.detect(stable_sequence, event_threshold=10.0)
        assert not report.anomalous_transitions()
