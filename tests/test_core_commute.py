"""Unit tests for the commute-time calculator (exact/approx dispatch)."""

import numpy as np
import pytest

from repro.core import CommuteTimeCalculator
from repro.exceptions import DetectionError
from repro.graphs import GraphSnapshot
from repro.linalg import commute_time_matrix


class TestDispatch:
    def test_auto_small_is_exact(self):
        calculator = CommuteTimeCalculator(method="auto", exact_limit=100)
        assert calculator.resolve_method(50) == "exact"
        assert calculator.resolve_method(101) == "approx"

    def test_explicit_methods(self):
        assert CommuteTimeCalculator(
            method="exact"
        ).resolve_method(10**6) == "exact"
        assert CommuteTimeCalculator(
            method="approx"
        ).resolve_method(3) == "approx"

    def test_rejects_unknown(self):
        with pytest.raises(DetectionError):
            CommuteTimeCalculator(method="fancy")


class TestPairwise:
    def test_exact_matches_matrix(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows = np.array([0, 1, 2])
        cols = np.array([10, 20, 30])
        values = calculator.pairwise(random_connected_graph, rows, cols)
        expected = commute_time_matrix(random_connected_graph.adjacency)
        np.testing.assert_allclose(values, expected[rows, cols],
                                   atol=1e-8)

    def test_approx_close_to_exact(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="approx", k=300, seed=0)
        rows = np.array([0, 1, 2, 3, 4])
        cols = np.array([10, 20, 30, 40, 50])
        values = calculator.pairwise(random_connected_graph, rows, cols)
        expected = commute_time_matrix(
            random_connected_graph.adjacency
        )[rows, cols]
        np.testing.assert_allclose(values, expected, rtol=0.5)

    def test_empty_pairs(self, random_connected_graph):
        calculator = CommuteTimeCalculator()
        result = calculator.pairwise(
            random_connected_graph, np.zeros(0), np.zeros(0)
        )
        assert result.size == 0

    def test_edgeless_snapshot_zeros(self):
        snapshot = GraphSnapshot(np.zeros((5, 5)))
        calculator = CommuteTimeCalculator(method="exact")
        values = calculator.pairwise(
            snapshot, np.array([0, 1]), np.array([2, 3])
        )
        assert values.tolist() == [0.0, 0.0]


class TestCaching:
    def test_repeated_snapshot_uses_cache(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows = np.array([0])
        cols = np.array([1])
        first = calculator.pairwise(random_connected_graph, rows, cols)
        # Same snapshot object: cache hit must return identical values.
        second = calculator.pairwise(random_connected_graph, rows, cols)
        np.testing.assert_array_equal(first, second)
        assert len(calculator._cache) == 1

    def test_cache_bounded(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows, cols = np.array([0]), np.array([1])
        snapshots = [
            GraphSnapshot(random_connected_graph.adjacency)
            for _ in range(4)
        ]
        for snapshot in snapshots:
            calculator.pairwise(snapshot, rows, cols)
        assert len(calculator._cache) <= 2

    def test_approx_deterministic_per_snapshot(self,
                                               random_connected_graph):
        # One calculator advances its RNG per new snapshot, but cached
        # backends make repeated queries on one snapshot consistent.
        calculator = CommuteTimeCalculator(method="approx", k=32, seed=9)
        rows, cols = np.array([0, 2]), np.array([1, 3])
        first = calculator.pairwise(random_connected_graph, rows, cols)
        second = calculator.pairwise(random_connected_graph, rows, cols)
        np.testing.assert_array_equal(first, second)
