"""Unit tests for the commute-time calculator (exact/approx dispatch)."""

import numpy as np
import pytest

from repro.core import CommuteTimeCalculator
from repro.exceptions import DetectionError
from repro.graphs import GraphSnapshot
from repro.linalg import FactorCache, commute_time_matrix
from repro.observability import collecting


class TestDispatch:
    def test_auto_small_is_exact(self):
        calculator = CommuteTimeCalculator(method="auto", exact_limit=100)
        assert calculator.resolve_method(50) == "exact"
        assert calculator.resolve_method(101) == "approx"

    def test_explicit_methods(self):
        assert CommuteTimeCalculator(
            method="exact"
        ).resolve_method(10**6) == "exact"
        assert CommuteTimeCalculator(
            method="approx"
        ).resolve_method(3) == "approx"

    def test_rejects_unknown(self):
        with pytest.raises(DetectionError):
            CommuteTimeCalculator(method="fancy")


class TestPairwise:
    def test_exact_matches_matrix(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows = np.array([0, 1, 2])
        cols = np.array([10, 20, 30])
        values = calculator.pairwise(random_connected_graph, rows, cols)
        expected = commute_time_matrix(random_connected_graph.adjacency)
        np.testing.assert_allclose(values, expected[rows, cols],
                                   atol=1e-8)

    def test_approx_close_to_exact(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="approx", k=300, seed=0)
        rows = np.array([0, 1, 2, 3, 4])
        cols = np.array([10, 20, 30, 40, 50])
        values = calculator.pairwise(random_connected_graph, rows, cols)
        expected = commute_time_matrix(
            random_connected_graph.adjacency
        )[rows, cols]
        np.testing.assert_allclose(values, expected, rtol=0.5)

    def test_empty_pairs(self, random_connected_graph):
        calculator = CommuteTimeCalculator()
        result = calculator.pairwise(
            random_connected_graph, np.zeros(0), np.zeros(0)
        )
        assert result.size == 0

    def test_edgeless_snapshot_zeros(self):
        snapshot = GraphSnapshot(np.zeros((5, 5)))
        calculator = CommuteTimeCalculator(method="exact")
        values = calculator.pairwise(
            snapshot, np.array([0, 1]), np.array([2, 3])
        )
        assert values.tolist() == [0.0, 0.0]


class TestCaching:
    def test_repeated_snapshot_uses_cache(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows = np.array([0])
        cols = np.array([1])
        first = calculator.pairwise(random_connected_graph, rows, cols)
        # Same snapshot object: cache hit must return identical values.
        second = calculator.pairwise(random_connected_graph, rows, cols)
        np.testing.assert_array_equal(first, second)
        assert len(calculator._cache) == 1

    def test_cache_bounded(self, random_connected_graph):
        calculator = CommuteTimeCalculator(method="exact")
        rows, cols = np.array([0]), np.array([1])
        snapshots = [
            GraphSnapshot(random_connected_graph.adjacency)
            for _ in range(4)
        ]
        for snapshot in snapshots:
            calculator.pairwise(snapshot, rows, cols)
        assert len(calculator._cache) <= 2

    def test_approx_deterministic_per_snapshot(self,
                                               random_connected_graph):
        # One calculator advances its RNG per new snapshot, but cached
        # backends make repeated queries on one snapshot consistent.
        calculator = CommuteTimeCalculator(method="approx", k=32, seed=9)
        rows, cols = np.array([0, 2]), np.array([1, 3])
        first = calculator.pairwise(random_connected_graph, rows, cols)
        second = calculator.pairwise(random_connected_graph, rows, cols)
        np.testing.assert_array_equal(first, second)

    def test_content_equal_snapshot_hits_cache(self,
                                               random_connected_graph):
        # Regression: the cache used to key on id(snapshot), so a
        # content-identical snapshot rebuilt after a checkpoint restore
        # (a different object) re-solved from scratch — and a recycled
        # id() could even alias a stale entry. Content keying makes the
        # rebuilt object a hit.
        calculator = CommuteTimeCalculator(method="exact")
        rows, cols = np.array([0]), np.array([1])
        rebuilt = GraphSnapshot(random_connected_graph.adjacency.copy(),
                                random_connected_graph.universe)
        assert rebuilt is not random_connected_graph
        with collecting() as registry:
            first = calculator.pairwise(random_connected_graph, rows,
                                        cols)
            second = calculator.pairwise(rebuilt, rows, cols)
        np.testing.assert_array_equal(first, second)
        assert len(calculator._cache) == 1
        assert registry.counter_value(
            "commute_backend_builds_total", {"method": "exact"}
        ) == 1
        assert registry.counter_value(
            "commute_backend_cache_hits_total"
        ) == 1


class TestFactorCache:
    def test_restored_calculator_hits_shared_cache(
            self, random_connected_graph):
        # A checkpoint-restored session builds a *new* calculator; with
        # the factor cache enabled it must reuse the old session's
        # factorization bit-for-bit instead of re-solving.
        cache = FactorCache(budget_mb=64)
        rows, cols = np.array([0, 4]), np.array([1, 9])
        before = CommuteTimeCalculator(method="exact",
                                       factor_cache=cache)
        first = before.pairwise(random_connected_graph, rows, cols)
        restored = CommuteTimeCalculator(method="exact",
                                         factor_cache=cache)
        with collecting() as registry:
            second = restored.pairwise(random_connected_graph, rows,
                                       cols)
        np.testing.assert_array_equal(first, second)
        assert cache.stats()["hits"] == 1
        assert registry.counter_value(
            "commute_backend_builds_total", {"method": "exact"}
        ) == 0

    def test_identity_hit_is_bit_for_bit(self, random_connected_graph):
        cache = FactorCache(budget_mb=64)
        writer = CommuteTimeCalculator(method="exact",
                                       factor_cache=cache)
        writer.pairwise(random_connected_graph, np.array([0]),
                        np.array([1]))
        digest = random_connected_graph.content_digest()
        entry = cache.get((digest, "exact"))
        reader = CommuteTimeCalculator(method="exact",
                                       factor_cache=cache)
        backend = reader._backend_for(random_connected_graph, "exact")
        assert backend is entry.backend  # the very same array object

    def test_small_delta_uses_rank_one_update(self,
                                              random_connected_graph):
        cache = FactorCache(budget_mb=64)
        calculator = CommuteTimeCalculator(method="exact",
                                           factor_cache=cache,
                                           delta_budget=8)
        rows, cols = np.array([0, 2]), np.array([1, 3])
        calculator.pairwise(random_connected_graph, rows, cols)
        edited = random_connected_graph.adjacency.tolil()
        j = random_connected_graph.neighbors(0)[0]
        edited[0, j] = edited[j, 0] = float(edited[0, j]) + 1.0
        drifted = GraphSnapshot(edited.tocsr(),
                                random_connected_graph.universe)
        with collecting() as registry:
            values = calculator.pairwise(drifted, rows, cols)
        assert registry.counter_value(
            "commute_backend_delta_updates_total"
        ) == 1
        assert registry.counter_value(
            "commute_backend_builds_total", {"method": "exact"}
        ) == 0
        cold = CommuteTimeCalculator(method="exact")
        expected = cold.pairwise(drifted, rows, cols)
        np.testing.assert_allclose(values, expected, atol=1e-8)

    def test_zero_delta_budget_disables_updates(
            self, random_connected_graph):
        cache = FactorCache(budget_mb=64)
        calculator = CommuteTimeCalculator(method="exact",
                                           factor_cache=cache,
                                           delta_budget=0)
        rows, cols = np.array([0]), np.array([1])
        calculator.pairwise(random_connected_graph, rows, cols)
        edited = random_connected_graph.adjacency.tolil()
        edited[0, 5] = edited[5, 0] = 2.0
        drifted = GraphSnapshot(edited.tocsr(),
                                random_connected_graph.universe)
        with collecting() as registry:
            calculator.pairwise(drifted, rows, cols)
        assert registry.counter_value(
            "commute_backend_delta_updates_total"
        ) == 0
        assert registry.counter_value(
            "commute_backend_builds_total", {"method": "exact"}
        ) == 1

    def test_corrupt_entry_falls_back_to_cold_solve(
            self, random_connected_graph):
        cache = FactorCache(budget_mb=64)
        writer = CommuteTimeCalculator(method="exact",
                                       factor_cache=cache)
        rows, cols = np.array([0]), np.array([1])
        expected = writer.pairwise(random_connected_graph, rows, cols)
        digest = random_connected_graph.content_digest()
        cache.get((digest, "exact")).backend[0, 0] = np.inf
        reader = CommuteTimeCalculator(method="exact",
                                       factor_cache=cache)
        values = reader.pairwise(random_connected_graph, rows, cols)
        np.testing.assert_allclose(values, expected, atol=1e-8)
        assert cache.stats()["corrupt"] == 1

    def test_approx_cacheable_only_in_content_mode(
            self, random_connected_graph):
        cache = FactorCache(budget_mb=64)
        stream = CommuteTimeCalculator(method="approx", k=16, seed=1,
                                       factor_cache=cache,
                                       seed_mode="stream")
        stream.pairwise(random_connected_graph, np.array([0]),
                        np.array([1]))
        assert len(cache) == 0  # stream-mode embeddings never cached
        content = CommuteTimeCalculator(method="approx", k=16, seed=1,
                                        factor_cache=cache,
                                        seed_mode="content")
        content.pairwise(random_connected_graph, np.array([0]),
                         np.array([1]))
        assert len(cache) == 1

    def test_exact_and_approx_keys_disjoint(self,
                                            random_connected_graph):
        # A degraded-mode method_override flips the resolved method;
        # the cache key carries the method, so the exact entry can
        # never satisfy the approx request (and vice versa).
        cache = FactorCache(budget_mb=64)
        calculator = CommuteTimeCalculator(method="exact",
                                           factor_cache=cache, k=16,
                                           seed=3, seed_mode="content")
        rows, cols = np.array([0]), np.array([1])
        calculator.pairwise(random_connected_graph, rows, cols)
        calculator.method_override = "approx"
        with collecting() as registry:
            calculator.pairwise(random_connected_graph, rows, cols)
        assert registry.counter_value(
            "commute_backend_builds_total", {"method": "approx"}
        ) == 1
        digest = random_connected_graph.content_digest()
        keys = {key[:2] for key in cache._entries}
        assert (digest, "exact") in keys
        assert any(key[1] == "approx" for key in cache._entries)

    def test_rejects_negative_delta_budget(self):
        with pytest.raises(DetectionError, match="delta_budget"):
            CommuteTimeCalculator(method="exact", delta_budget=-1)
