"""Shim for legacy editable installs in offline environments without
the ``wheel`` package (``pip install -e . --no-use-pep517``)."""

from setuptools import setup

setup()
